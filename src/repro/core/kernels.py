"""Low-level, allocation-conscious kernels of the formation hot path.

Profiling million-user formation runs shows nearly all the time goes to two
single-core kernels: ranking every user's top-``k`` items (the
:class:`~repro.core.topk_index.TopKIndex` build) and grouping users whose
top-``k`` key rows are identical (step 1 bucketing).  This module owns both,
in two selectable generations:

``"classic"``
    The historical kernels, kept verbatim as the executable baseline:
    ``k`` argmax "peels" over a fresh full-matrix copy for the top-k table
    (:func:`repro.core.preferences._top_k_table_dispatch`) and an
    ``np.lexsort`` over all ``k (+ score)`` packed ``uint64`` key columns
    for bucketing.
``"fast"``
    The overhauled kernels (the default).  The top-k table is built in
    bounded **row blocks** over reusable thread-local scratch — an argmax
    peel while ``k`` is small (each pass then runs over a cache-resident
    block instead of streaming the full matrix from RAM) and a
    partition-select with a deterministic tail re-sort once ``k`` grows —
    and bucketing hashes each bucket key to a single 64-bit polynomial
    **fingerprint** (computed in one fused pass over the top-k tables,
    without materialising the packed key matrix), groups by one stable
    integer argsort, verifies the groups against the exact keys, and
    falls back to the classic lexsort only when a fingerprint collision
    is detected.
``"parallel"``
    Generation 3: the same two hot loops lowered into a small C library
    compiled on first use with the system compiler and threaded over
    per-call POSIX threads (:mod:`repro.core.kernels_cc`).  The per-row
    top-k selection
    keeps the deterministic lowest-index boundary-tie resolution in C,
    and the fused pack+fingerprint pass emits the exact fingerprints of
    the fast generation.  Rows are independent, so results are
    bit-identical for **every** thread count (:func:`set_kernel_threads`
    / ``REPRO_KERNEL_THREADS``).  When no C compiler is available the
    generation falls back to ``fast`` with a single warning; the
    collision-checked lexsort fallback of the bucketing path always
    stays in Python, so exactness never depends on compiled code.

All generations are **bit-identical** by construction and by test
(``tests/core/test_kernels.py``): the top-k kernels reproduce the
library-wide tie-break (rating descending, item index ascending) exactly,
and the bucketing kernels produce the same partition of users with the same
ascending member order per bucket.  The only permitted difference is bucket
*enumeration order* (key-sorted vs fingerprint-sorted), which no consumer
depends on: greedy selection totally orders buckets by ``(score,
representative)`` and member/remaining lists are user-ordered.

The active generation is a process-wide switch (:func:`set_kernels` /
:func:`use_kernels`), threaded through the ``--kernels
{classic,fast,parallel}`` CLI flag and shipped to executor worker
processes with each task, alongside the kernel thread count
(:func:`set_kernel_threads`, the ``--kernel-threads`` flag and the
``REPRO_KERNEL_THREADS`` environment variable).
:data:`KERNEL_GENERATION` feeds the artifact-cache key so artifacts
persisted by older kernel generations are invalidated rather than mixed;
the ``parallel`` generation shares generation 2's artifact layout and
bytes, so its artifacts are interchangeable with ``fast``'s and no bump
is needed.

Inputs are assumed NaN-free (every rating store validates completeness);
``±inf`` is handled exactly by the partition-select path, which is why the
fast dispatch never needs the classic kernel's ``-inf`` sentinel scan to
pick an algorithm.
"""

from __future__ import annotations

import os
import threading
import warnings
from collections.abc import Iterator
from contextlib import contextmanager

import numpy as np

from repro.core.preferences import _top_k_table_dispatch, _top_k_table_sorted
from repro.obs.registry import (
    H_KERNEL_BUCKETIZE,
    H_KERNEL_TOPK,
    K_KERNEL_BUCKETIZE_CALLS,
    K_KERNEL_TOPK_CALLS,
)
from repro.obs.runtime import observed

__all__ = [
    "DEFAULT_KERNELS",
    "KERNEL_GENERATION",
    "KERNEL_MODES",
    "KERNEL_THREADS_ENV",
    "bucket_reduce",
    "bucketize",
    "clear_scratch",
    "fingerprint_rows",
    "float_to_ordinal",
    "fused_fingerprint_rows",
    "get_kernel_threads",
    "get_kernels",
    "group_key_rows",
    "pack_key_rows",
    "parallel_available",
    "set_kernel_threads",
    "set_kernels",
    "top_k_table",
    "use_kernel_threads",
    "use_kernels",
]

#: Kernel generations selectable via ``--kernels``.
KERNEL_MODES: tuple[str, ...] = ("classic", "fast", "parallel")

#: Environment variable supplying the default kernel thread count.
KERNEL_THREADS_ENV = "REPRO_KERNEL_THREADS"

#: Generation used when none is requested explicitly.
DEFAULT_KERNELS = "fast"

#: Monotone cache-key component: bumped whenever a kernel generation changes
#: in a way that alters *persisted artifact layout or provenance* (e.g. the
#: packed-key encoding), so :class:`~repro.execution.cache.ArtifactCache`
#: entries written by older kernels are invalidated instead of silently
#: mixed with new ones.  The ``parallel`` generation is bit-identical to
#: generation 2 and shares its artifact layout, so it deliberately does
#: not bump this value: its artifacts are interchangeable with ``fast``'s.
KERNEL_GENERATION = 2

_active = DEFAULT_KERNELS
_scratch = threading.local()

#: Explicit kernel thread count (``None`` = auto: the
#: :data:`KERNEL_THREADS_ENV` environment variable, else the CPU count).
_threads: int | None = None

_fallback_warned = False

#: Peak bytes of the reusable float64 scratch block (per thread); the fast
#: top-k kernel sizes its row blocks so one block fits in cache and the
#: peak working set stays bounded on dense 1M x 10k inputs.
_SCRATCH_TARGET_BYTES = 8 << 20
_MAX_BLOCK_ROWS = 2048
_MIN_BLOCK_ROWS = 64

#: Odd 64-bit multiplier (2^64 / golden ratio) for the polynomial row hash.
_FINGERPRINT_MULTIPLIER = 0x9E3779B97F4A7C15


def _load_parallel():
    """The compiled backend, or ``None`` when it cannot be built/loaded."""
    from repro.core import kernels_cc

    return kernels_cc.load_compiled()


def parallel_available() -> bool:
    """Whether the compiled ``parallel`` generation can run in this process.

    Building/loading the compiled library happens (once) on the first
    call; a box without a C compiler — or with the backend disabled via
    ``REPRO_KERNEL_CC=none`` — reports ``False`` and the ``parallel``
    generation falls back to ``fast``.
    """
    return _load_parallel() is not None


def get_kernels() -> str:
    """The active kernel generation (``"classic"``, ``"fast"`` or ``"parallel"``)."""
    return _active


def set_kernels(name: str) -> str:
    """Select the active kernel generation process-wide.

    Requesting ``"parallel"`` when the compiled backend is unavailable
    (no C compiler, or disabled via ``REPRO_KERNEL_CC``) activates
    ``"fast"`` instead and emits a single :class:`RuntimeWarning` per
    process — results are bit-identical either way, only speed differs.

    Parameters
    ----------
    name:
        ``"classic"``, ``"fast"`` or ``"parallel"``.

    Returns
    -------
    str
        The previously active generation (so callers can restore it).
    """
    global _active, _fallback_warned
    key = str(name).strip().lower()
    if key not in KERNEL_MODES:
        known = ", ".join(KERNEL_MODES)
        raise ValueError(f"unknown kernel generation {name!r}; expected one of: {known}")
    if key == "parallel" and _load_parallel() is None:
        if not _fallback_warned:
            from repro.core import kernels_cc

            reason = kernels_cc.unavailable_reason() or "compiled backend unavailable"
            warnings.warn(
                f"parallel kernels unavailable ({reason}); falling back to the "
                f"bit-identical 'fast' generation",
                RuntimeWarning,
                stacklevel=2,
            )
            _fallback_warned = True
        key = "fast"
    previous = _active
    _active = key
    return previous


@contextmanager
def use_kernels(name: str) -> Iterator[str]:
    """Context manager: run a block under the given kernel generation.

    Parameters
    ----------
    name:
        ``"classic"``, ``"fast"`` or ``"parallel"``; the previous
        generation is restored on exit.
    """
    previous = set_kernels(name)
    try:
        yield _active
    finally:
        set_kernels(previous)


def get_kernel_threads() -> int:
    """The kernel thread count compiled kernels run with (always >= 1).

    Resolution order: an explicit :func:`set_kernel_threads` value, the
    :data:`KERNEL_THREADS_ENV` environment variable, then the CPU count.
    Thread count never affects results — the compiled kernels are
    row-independent — only wall-clock time.
    """
    if _threads is not None:
        return _threads
    env = os.environ.get(KERNEL_THREADS_ENV)
    if env:
        try:
            value = int(env)
        except ValueError:
            value = 0
        if value >= 1:
            return value
    return os.cpu_count() or 1


def set_kernel_threads(n: int | None) -> int | None:
    """Set the kernel thread count process-wide.

    Parameters
    ----------
    n:
        Thread count (>= 1), or ``None`` to restore the automatic
        default (environment variable, then CPU count).

    Returns
    -------
    int or None
        The previous explicit setting (``None`` when it was automatic),
        so callers can restore it.
    """
    global _threads
    if n is not None:
        n = int(n)
        if n < 1:
            raise ValueError(f"kernel thread count must be >= 1, got {n}")
    previous = _threads
    _threads = n
    return previous


@contextmanager
def use_kernel_threads(n: int | None) -> Iterator[int]:
    """Context manager: run a block with the given kernel thread count.

    Parameters
    ----------
    n:
        Thread count (>= 1) or ``None`` for automatic; the previous
        setting is restored on exit.
    """
    previous = set_kernel_threads(n)
    try:
        yield get_kernel_threads()
    finally:
        set_kernel_threads(previous)


def clear_scratch() -> None:
    """Drop this thread's reusable kernel scratch buffers.

    The fast kernels keep one set of block-sized work arrays per thread to
    avoid re-faulting fresh pages on every call; long-lived hosts that want
    the memory back (or tests measuring allocations) call this.
    """
    _scratch.__dict__.clear()


def _scratch_array(name: str, shape: tuple[int, ...], dtype: np.dtype) -> np.ndarray:
    """A reusable per-thread array of at least ``shape`` (uninitialised)."""
    key = (name, np.dtype(dtype).str)
    cached = _scratch.__dict__.get(key)
    needed = int(np.prod(shape))
    if cached is None or cached.size < needed:
        cached = np.empty(needed, dtype=dtype)
        _scratch.__dict__[key] = cached
    return cached[:needed].reshape(shape)


# --------------------------------------------------------------------------- #
# Monotone float -> uint64 ordinal transform
# --------------------------------------------------------------------------- #


def float_to_ordinal(values: np.ndarray) -> np.ndarray:
    """Map floats to ``uint64`` ordinals that sort and compare like the floats.

    The transform is the standard sign-flip trick on the IEEE-754 bit
    pattern: non-negative patterns get the sign bit set, negative patterns
    are bitwise complemented.  It is a **bijection** on bit patterns with
    two properties the kernels rely on:

    * **order**: for non-NaN ``a < b`` implies ``ord(a) < ord(b)`` — packed
      score columns keep their exact ordering under unsigned integer
      comparison (``-0.0`` orders strictly below ``+0.0``, refining the IEEE
      tie);
    * **equality**: ``ord(a) == ord(b)`` exactly when ``a`` and ``b`` have
      identical bit patterns — the same equality the reference backend's
      byte keys implement (so ``-0.0`` and ``+0.0`` stay *distinct* keys,
      and every NaN payload is distinct but deterministic).

    ``float32`` input is upcast to ``float64`` first (exact and monotone),
    so both widths share one ordinal space.  Subnormals and ``±inf`` need no
    special cases: subnormal patterns already sit between zero and the
    smallest normal, and ``±inf`` between the finite range and the NaN
    patterns (positive NaNs map above ``+inf``, negative NaNs below
    ``-inf``).

    Parameters
    ----------
    values:
        Array of ``float64`` or ``float32`` (any shape).

    Returns
    -------
    numpy.ndarray
        ``uint64`` array of the same shape.
    """
    values = np.asarray(values)
    if values.dtype != np.float64:
        values = values.astype(np.float64)
    bits = np.ascontiguousarray(values).view(np.uint64)
    sign = np.uint64(1) << np.uint64(63)
    return np.where(bits & sign, ~bits, bits | sign)


# --------------------------------------------------------------------------- #
# Top-k table kernels
# --------------------------------------------------------------------------- #


def _fast_block_rows(n_items: int) -> int:
    """Rows per block so one float64 block hits the scratch byte target."""
    rows = _SCRATCH_TARGET_BYTES // (8 * max(n_items, 1))
    return max(_MIN_BLOCK_ROWS, min(_MAX_BLOCK_ROWS, int(rows)))


def _topk_block_peel(
    block: np.ndarray, k: int, items_out: np.ndarray, values_out: np.ndarray
) -> None:
    """Argmax-peel one row block over reusable scratch (small ``k``).

    ``np.argmax`` returns the first occurrence of the maximum — the lowest
    item index — which is exactly the library tie-break, so ``k`` peels
    reproduce the stable-sort table bit for bit.  The scratch copy keeps
    the peel's ``-inf`` masking off the caller's data, and the output
    values are gathered from the original ``block`` so bit patterns (e.g.
    ``-0.0``) survive untouched.
    """
    n_rows = block.shape[0]
    work = _scratch_array("topk_work", block.shape, np.float64)
    np.copyto(work, block)
    rows = np.arange(n_rows)
    for rank in range(k):
        best = np.argmax(work, axis=1)
        items_out[:, rank] = best
        work[rows, best] = -np.inf
    values_out[:] = np.take_along_axis(block, items_out, axis=1)


def _topk_block_select(
    block: np.ndarray, k: int, items_out: np.ndarray, values_out: np.ndarray
) -> None:
    """Partition-select one row block with a deterministic tail re-sort.

    One in-place introselect over scratch finds each row's k-th largest
    value; items strictly above it are all selected, and ties *at* the
    boundary are resolved to the lowest item indices (the library
    tie-break) by ranking the equal entries in index order.  A stable
    ``O(k log k)`` argsort of the selected candidates then reproduces the
    (rating descending, item ascending) order bit for bit — equal values
    keep the ascending index order the candidates arrive in.  Exact for
    ``±inf``; only NaN (excluded by store validation) is undefined.
    """
    n_rows, n_items = block.shape
    work = _scratch_array("topk_work", block.shape, np.float64)
    np.copyto(work, block)
    work.partition(n_items - k, axis=1)
    boundary = np.ascontiguousarray(work[:, n_items - k])[:, None]

    keep = _scratch_array("topk_keep", block.shape, np.bool_)
    np.greater_equal(block, boundary, out=keep)
    equal = _scratch_array("topk_equal", block.shape, np.bool_)
    np.equal(block, boundary, out=equal)
    n_keep = keep.sum(axis=1)
    n_equal = equal.sum(axis=1)
    # Of the entries equal to the boundary, only the first
    # (k - #strictly-greater) per row survive.
    quota = (k - (n_keep - n_equal))[:, None]
    rank = _scratch_array("topk_rank", block.shape, np.int32)
    np.cumsum(equal, axis=1, dtype=np.int32, out=rank)
    spill = _scratch_array("topk_spill", block.shape, np.bool_)
    np.greater(rank, quota, out=spill)
    spill &= equal
    keep &= ~spill

    candidates = np.nonzero(keep)[1].reshape(n_rows, k)
    candidate_values = np.take_along_axis(block, candidates, axis=1)
    order = np.argsort(-candidate_values, axis=1, kind="stable")
    items_out[:] = np.take_along_axis(candidates, order, axis=1)
    values_out[:] = np.take_along_axis(candidate_values, order, axis=1)


def _top_k_table_fast(values: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """The fast blocked top-k kernel (validation already done)."""
    n_users, n_items = values.shape
    items_table = np.empty((n_users, k), dtype=np.int64)
    values_table = np.empty((n_users, k), dtype=np.float64)
    # The peel streams k cache-resident passes; the partition-select pays a
    # few extra mask passes but only one selection pass, which wins once k
    # grows past a small fraction of the catalogue (measured crossover).
    use_peel = k <= max(16, n_items // 8)
    block_rows = _fast_block_rows(n_items)
    for start in range(0, n_users, block_rows):
        stop = min(start + block_rows, n_users)
        block = values[start:stop]
        if use_peel:
            _topk_block_peel(block, k, items_table[start:stop], values_table[start:stop])
        else:
            _topk_block_select(
                block, k, items_table[start:stop], values_table[start:stop]
            )
    return items_table, values_table


def top_k_table(
    values: np.ndarray, k: int, assume_finite: bool = False
) -> tuple[np.ndarray, np.ndarray]:
    """Per-user top-``k`` items and ratings under the active kernel generation.

    Every generation implements the library tie-break (rating descending,
    item index ascending) bit for bit; only speed and peak memory differ.
    Validation (2-D shape, ``1 <= k <= n_items``, no NaN) is the caller's
    responsibility, matching the internal kernels this function fronts.

    Parameters
    ----------
    values:
        Complete ``(n_users, n_items)`` float rating array (NaN-free).
    k:
        Top-k prefix length.
    assume_finite:
        Promise that ``values`` contains no ``-inf``; lets the classic
        dispatch skip its sentinel scan (the fast path handles ``±inf``
        exactly either way, but an explicit ``-inf`` would collide with the
        classic peel's mask sentinel; the parallel kernel's comparison-based
        selection needs no sentinel at all, so it skips the scan too).

    Returns
    -------
    (items, values):
        ``(n_users, k)`` int64 item table and float64 rating table.
    """
    values = np.asarray(values, dtype=np.float64)
    with observed("kernel.top_k", H_KERNEL_TOPK, counter=K_KERNEL_TOPK_CALLS):
        if _active == "classic":
            return _top_k_table_dispatch(values, k, assume_finite=assume_finite)
        if _active == "parallel":
            backend = _load_parallel()
            if backend is not None:
                return backend.top_k(values, k, get_kernel_threads())
        if not assume_finite and np.isneginf(values).any():
            # The peel branch masks with -inf; the classic contract handles
            # explicit -inf ratings through the full stable sort.
            return _top_k_table_sorted(values, k)
        return _top_k_table_fast(values, k)


# --------------------------------------------------------------------------- #
# Bucketing kernels
# --------------------------------------------------------------------------- #


def pack_key_rows(
    items_table: np.ndarray, scores_table: np.ndarray, key_scores: str
) -> np.ndarray:
    """Pack each user's bucket key into one row of ``uint64`` words.

    Item indices are stored as their integer values; the score columns a
    variant keys on (``key_scores`` of ``"none"`` / ``"first"`` / ``"last"``
    / ``"all"``) are stored as their :func:`float_to_ordinal` ordinals, so
    two packed rows are equal exactly when the reference backend's
    concatenated byte keys are equal *and* unsigned comparison of the packed
    words preserves the score ordering.  The packing is
    kernel-generation-independent — summaries produced under ``classic`` and
    ``fast`` kernels carry interchangeable keys.

    Parameters
    ----------
    items_table, scores_table:
        The ``(n_users, k)`` ranked top-k tables.
    key_scores:
        Which score columns join the key (see
        :class:`~repro.core.greedy_framework.GreedyVariant`).
    """
    n_users, k = items_table.shape
    if key_scores == "none":
        score_part = None
    elif key_scores == "first":
        score_part = scores_table[:, :1]
    elif key_scores == "last":
        score_part = scores_table[:, -1:]
    else:
        score_part = scores_table
    n_score_cols = 0 if score_part is None else score_part.shape[1]
    packed = np.empty((n_users, k + n_score_cols), dtype=np.uint64)
    packed[:, :k] = items_table.astype(np.uint64, copy=False)
    if score_part is not None:
        packed[:, k:] = float_to_ordinal(score_part)
    return packed


def fingerprint_rows(packed: np.ndarray) -> np.ndarray:
    """Hash each packed key row to one ``uint64`` polynomial fingerprint.

    The fingerprint of row ``r`` is ``sum_j packed[r, j] * R**(j+1)`` in
    wrapping 64-bit arithmetic with ``R`` an odd multiplier, so equal rows
    always share a fingerprint and unequal rows collide with probability
    ``~2^-64`` per pair.  Collisions are *detected* (and survived) by
    :func:`group_key_rows`, never assumed absent.

    Parameters
    ----------
    packed:
        ``(n_rows, width)`` ``uint64`` key matrix from :func:`pack_key_rows`.
    """
    if _active == "parallel":
        backend = _load_parallel()
        if backend is not None:
            return backend.fingerprint_packed(packed, get_kernel_threads())
    return (packed * _fingerprint_weights(packed.shape[1])).sum(axis=1, dtype=np.uint64)


def _fingerprint_weights(width: int) -> np.ndarray:
    """``w[j] = R^(j+1)`` in wrapping uint64 arithmetic, ``R`` the multiplier."""
    weights = np.empty(width, dtype=np.uint64)
    acc = 1
    for j in range(width):
        acc = (acc * _FINGERPRINT_MULTIPLIER) & 0xFFFFFFFFFFFFFFFF
        weights[j] = acc
    return weights


def _key_score_columns(k: int, key_scores: str) -> tuple[int, ...]:
    """Which ``scores_table`` columns join the bucket key for ``key_scores``."""
    if key_scores == "none":
        return ()
    if key_scores == "first":
        return (0,)
    if key_scores == "last":
        return (k - 1,)
    return tuple(range(k))


def fused_fingerprint_rows(
    items_table: np.ndarray, scores_table: np.ndarray, key_scores: str
) -> np.ndarray:
    """Bucket-key fingerprints in one fused pass over the top-k tables.

    Word-for-word identical to
    ``fingerprint_rows(pack_key_rows(items_table, scores_table,
    key_scores))`` — same weights, same wrapping arithmetic — but the
    packed key matrix is never materialised: the ``parallel`` generation
    computes each row's fingerprint in one compiled threaded pass, and
    ``fast``/``classic`` generations accumulate column products over
    reusable scratch (the packing, ordinal-transform and product
    temporaries that used to eat the fingerprint win at fig4 scale are
    all gone).

    Parameters
    ----------
    items_table, scores_table:
        The ``(n_users, k)`` ranked top-k tables.
    key_scores:
        Which score columns join the key (``"none"`` / ``"first"`` /
        ``"last"`` / ``"all"``).
    """
    if _active == "parallel":
        backend = _load_parallel()
        if backend is not None:
            return backend.fused_fingerprint(
                items_table, scores_table, key_scores, get_kernel_threads()
            )
    n_users, k = items_table.shape
    cols = _key_score_columns(k, key_scores)
    weights = _fingerprint_weights(k + len(cols))
    out = np.zeros(n_users, dtype=np.uint64)
    tmp = _scratch_array("fp_tmp", (n_users,), np.uint64)
    items_bits = np.ascontiguousarray(items_table, dtype=np.int64).view(np.uint64)
    for j in range(k):
        np.multiply(items_bits[:, j], weights[j], out=tmp)
        out += tmp
    if cols:
        score_bits = np.ascontiguousarray(scores_table, dtype=np.float64).view(np.uint64)
        ordinal = _scratch_array("fp_ordinal", (n_users,), np.uint64)
        sign = np.uint64(1) << np.uint64(63)
        for t, j in enumerate(cols):
            bits = score_bits[:, j]
            # In-place float_to_ordinal: xor with the all-ones mask for
            # negative bit patterns (arithmetic shift of the sign bit) or
            # with just the sign bit for non-negative ones.
            np.right_shift(bits.view(np.int64), np.int64(63), out=ordinal.view(np.int64))
            np.right_shift(ordinal, np.uint64(1), out=ordinal)
            np.bitwise_or(ordinal, sign, out=ordinal)
            np.bitwise_xor(ordinal, bits, out=ordinal)
            np.multiply(ordinal, weights[k + t], out=tmp)
            out += tmp
    return out


def _group_rows_lexsort(packed: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """The classic grouping: stable lexsort over every packed key column."""
    n_rows = packed.shape[0]
    order = np.lexsort(packed.T[::-1])
    srt = packed[order]
    new_segment = np.empty(n_rows, dtype=bool)
    new_segment[0] = True
    np.any(srt[1:] != srt[:-1], axis=1, out=new_segment[1:])
    return order, new_segment


def _group_rows_fingerprint(packed: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Fingerprint grouping with exact verification and lexsort fallback."""
    n_rows = packed.shape[0]
    fingerprints = fingerprint_rows(packed)
    # Stable argsort (radix for integers): users with equal keys stay in
    # ascending user order, so each bucket's first member is its
    # representative, exactly as in the classic grouping.
    order = np.argsort(fingerprints, kind="stable")
    sorted_fp = fingerprints[order]
    same_fp = sorted_fp[1:] == sorted_fp[:-1]
    new_segment = np.empty(n_rows, dtype=bool)
    new_segment[0] = True
    np.logical_not(same_fp, out=new_segment[1:])
    # Verify every adjacent same-fingerprint pair against the exact keys:
    # a genuine bucket is a run of identical rows, so any difference inside
    # a same-fingerprint run proves a collision.  (An interleaved run like
    # A,B,A always has an adjacent differing pair, so this scan cannot miss.)
    suspects = np.flatnonzero(same_fp) + 1
    if suspects.size:
        if suspects.size * 4 >= n_rows:
            # Dense buckets: one contiguous gather + adjacent compare is
            # cheaper than two fancy-indexed subset gathers.
            srt = packed[order]
            collision = np.any(srt[1:] != srt[:-1], axis=1)[suspects - 1]
        else:
            collision = np.any(
                packed[order[suspects]] != packed[order[suspects - 1]], axis=1
            )
        if collision.any():
            return _group_rows_lexsort(packed)
    return order, new_segment


def _table_rows_differ(
    items_table: np.ndarray,
    scores_table: np.ndarray,
    cols: tuple[int, ...],
    rows_a: np.ndarray,
    rows_b: np.ndarray,
) -> np.ndarray:
    """Whether each ``(rows_a[i], rows_b[i])`` pair has unequal bucket keys.

    The exact-key comparison of the fused bucketing path: item columns
    compare as integers, score columns compare as IEEE-754 **bit
    patterns** (the same equality the ordinal transform implements), so
    this is precisely packed-key inequality without building packed keys.

    Parameters
    ----------
    items_table, scores_table:
        The ``(n_users, k)`` ranked top-k tables.
    cols:
        Score columns participating in the key.
    rows_a, rows_b:
        Equal-length arrays of row indices to compare pairwise.
    """
    differ = np.any(items_table[rows_a] != items_table[rows_b], axis=1)
    if cols:
        cols_list = list(cols)
        bits_a = np.ascontiguousarray(
            scores_table[rows_a][:, cols_list], dtype=np.float64
        ).view(np.uint64)
        bits_b = np.ascontiguousarray(
            scores_table[rows_b][:, cols_list], dtype=np.float64
        ).view(np.uint64)
        differ |= np.any(bits_a != bits_b, axis=1)
    return differ


def _group_tables_fused(
    items_table: np.ndarray, scores_table: np.ndarray, key_scores: str
) -> tuple[np.ndarray, np.ndarray]:
    """Fingerprint grouping straight from the top-k tables (fused pass).

    The ``fast``/``parallel`` bucketing hot path: fingerprints come from
    :func:`fused_fingerprint_rows` (no packed keys materialised), the
    stable argsort and collision verification mirror the packed-key
    grouping, and the packed matrix is only ever built when verification
    goes dense (many duplicate keys — one contiguous gather beats
    pairwise fancy indexing) or an actual collision forces the exact
    lexsort fallback, which always runs in Python.
    """
    n_rows = items_table.shape[0]
    fingerprints = fused_fingerprint_rows(items_table, scores_table, key_scores)
    order = np.argsort(fingerprints, kind="stable")
    sorted_fp = fingerprints[order]
    same_fp = sorted_fp[1:] == sorted_fp[:-1]
    new_segment = np.empty(n_rows, dtype=bool)
    new_segment[0] = True
    np.logical_not(same_fp, out=new_segment[1:])
    suspects = np.flatnonzero(same_fp) + 1
    if suspects.size:
        if suspects.size * 4 >= n_rows:
            # Dense buckets: one contiguous gather + adjacent compare is
            # cheaper than two fancy-indexed subset gathers.
            packed = pack_key_rows(items_table, scores_table, key_scores)
            srt = packed[order]
            collision = np.any(srt[1:] != srt[:-1], axis=1)[suspects - 1]
        else:
            collision = _table_rows_differ(
                items_table,
                scores_table,
                _key_score_columns(items_table.shape[1], key_scores),
                order[suspects],
                order[suspects - 1],
            )
        if collision.any():
            return _group_rows_lexsort(
                pack_key_rows(items_table, scores_table, key_scores)
            )
    return order, new_segment


def group_key_rows(packed: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Group equal rows of a packed key matrix under the active kernels.

    Returns
    -------
    (order, new_segment):
        ``order`` lists all row indices with equal rows contiguous and each
        group's rows in ascending index order; ``new_segment[i]`` marks
        positions in ``order`` where a new group starts.  The classic
        generation enumerates groups in key-lexicographic order, the fast
        generation in fingerprint order; the *partition* and within-group
        order are identical (no formation consumer depends on group
        enumeration order — greedy selection totally orders buckets by
        ``(score, representative)``).

    Parameters
    ----------
    packed:
        ``(n_rows, width)`` ``uint64`` key matrix from :func:`pack_key_rows`.
    """
    if packed.shape[0] == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, np.empty(0, dtype=bool)
    if _active == "classic":
        return _group_rows_lexsort(packed)
    return _group_rows_fingerprint(packed)


def bucketize(
    items_table: np.ndarray, scores_table: np.ndarray, key_scores: str
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Group users with equal bucket keys (step 1 of the greedy skeleton).

    Parameters
    ----------
    items_table, scores_table:
        The ``(n_users, k)`` ranked top-k tables.
    key_scores:
        Which score columns join the key (see
        :class:`~repro.core.greedy_framework.GreedyVariant`).

    Returns
    -------
    (inverse, sorted_users, starts):
        ``inverse[u]`` is the bucket id of user ``u``; ``sorted_users``
        lists all users with buckets contiguous and members ascending;
        ``starts`` holds each bucket's first position in ``sorted_users``.
    """
    n_users = items_table.shape[0]
    if n_users == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty
    with observed(
        "kernel.bucketize", H_KERNEL_BUCKETIZE, counter=K_KERNEL_BUCKETIZE_CALLS
    ):
        if _active == "classic":
            packed = pack_key_rows(items_table, scores_table, key_scores)
            sorted_users, new_segment = _group_rows_lexsort(packed)
        else:
            # fast/parallel: fused fingerprints straight off the tables — the
            # packed key matrix never materialises unless verification needs it.
            sorted_users, new_segment = _group_tables_fused(
                items_table, scores_table, key_scores
            )
        starts = np.flatnonzero(new_segment)
        inverse = np.empty(n_users, dtype=np.int64)
        inverse[sorted_users] = np.cumsum(new_segment) - 1
        return inverse, sorted_users, starts


def bucket_reduce(
    inverse: np.ndarray,
    contributions: np.ndarray,
    n_buckets: int,
    combine: str,
    representatives: np.ndarray,
) -> np.ndarray:
    """Reduce per-user contributions to one heap score per bucket.

    The ``"sum"`` rule is a single fused ``np.bincount`` accumulation —
    members are added in ascending user order, the same sequential order
    (and therefore the same floating-point rounding) as the reference
    backend's dict loop, with no intermediate per-bucket arrays or copies.
    The ``"first"`` rule gathers each representative's contribution.

    Parameters
    ----------
    inverse:
        ``(n_users,)`` bucket id per user.
    contributions:
        ``(n_users,)`` per-user personal aggregated top-k values.
    n_buckets:
        Number of buckets.
    combine:
        ``"sum"`` or ``"first"`` (see
        :class:`~repro.core.greedy_framework.GreedyVariant`).
    representatives:
        ``(n_buckets,)`` first (smallest-index) member per bucket.
    """
    if combine == "sum":
        return np.bincount(inverse, weights=contributions, minlength=n_buckets)
    return contributions[representatives]
