"""Core of the reproduction: group recommendation semantics and the
recommendation-aware group-formation algorithms.

The layering inside this subpackage follows the paper:

* :mod:`repro.core.semantics` and :mod:`repro.core.aggregation` — the LM / AV
  semantics (§2.2) and the Max / Min / Sum / Weighted-Sum aggregation
  functions (§2.3, §6).
* :mod:`repro.core.preferences` — per-user preference lists and top-k tables.
* :mod:`repro.core.group_recommender` — top-k recommendation for a *given*
  group (the substrate assumed by the paper).
* :mod:`repro.core.grouping` — result containers and partition evaluation.
* :mod:`repro.core.greedy_lm` / :mod:`repro.core.greedy_av` — the paper's
  GRD algorithms (§4, §5) built on the shared framework in
  :mod:`repro.core.greedy_framework`.
* :mod:`repro.core.engine` — the :class:`~repro.core.engine.FormationEngine`
  execution layer running the greedy skeleton through a pluggable backend
  (loop-based ``"reference"`` or vectorised ``"numpy"``, bit-identical), with
  a batch API sharing work across configuration sweeps.
* :mod:`repro.core.kernels` — the low-level ranking/bucketing kernels the
  vectorised hot path runs on, in three bit-identical generations selectable
  via ``--kernels {classic,fast,parallel}`` (the compiled ``parallel``
  generation threads the hot loops and honours ``--kernel-threads``).
* :mod:`repro.core.formation` — the :func:`~repro.core.formation.form_groups`
  facade dispatching to greedy, baseline and exact algorithms.
"""

from repro.core.aggregation import (
    Aggregation,
    MaxAggregation,
    MinAggregation,
    SumAggregation,
    WeightedSumAggregation,
    get_aggregation,
)
from repro.core.errors import (
    GroupFormationError,
    InfeasibleInstanceError,
    IngestError,
    RatingDataError,
    ReproError,
    SolverError,
)
from repro.core.engine import (
    BACKENDS,
    DEFAULT_BACKEND,
    FormationBackend,
    FormationConfig,
    FormationEngine,
    NumpyBackend,
    ReferenceBackend,
    get_backend,
)
from repro.core.kernels import (
    DEFAULT_KERNELS,
    KERNEL_MODES,
    get_kernel_threads,
    get_kernels,
    parallel_available,
    set_kernel_threads,
    set_kernels,
    use_kernel_threads,
    use_kernels,
)
from repro.core.sharded import ShardedFormation
from repro.core.topk_index import MutableTopKIndex, TopKIndex
from repro.core.formation import available_algorithms, form_groups
from repro.core.greedy_av import grd_av, grd_av_max, grd_av_min, grd_av_sum
from repro.core.greedy_lm import (
    absolute_error_bound,
    grd_lm,
    grd_lm_max,
    grd_lm_min,
    grd_lm_sum,
)
from repro.core.group_recommender import (
    GroupRecommender,
    group_item_scores,
    group_satisfaction,
    recommend_top_k,
)
from repro.core.grouping import (
    Group,
    GroupFormationResult,
    evaluate_partition,
    validate_partition,
)
from repro.core.preferences import (
    full_ranking,
    preference_list,
    top_k_items,
    top_k_sequence,
    top_k_table,
    top_k_table_fast,
)
from repro.core.semantics import Semantics, get_semantics

__all__ = [
    # semantics & aggregation
    "Semantics",
    "get_semantics",
    "Aggregation",
    "MaxAggregation",
    "MinAggregation",
    "SumAggregation",
    "WeightedSumAggregation",
    "get_aggregation",
    # preferences
    "full_ranking",
    "preference_list",
    "top_k_items",
    "top_k_sequence",
    "top_k_table",
    "top_k_table_fast",
    # formation engine
    "BACKENDS",
    "DEFAULT_BACKEND",
    "FormationBackend",
    "FormationConfig",
    "FormationEngine",
    "NumpyBackend",
    "ReferenceBackend",
    "MutableTopKIndex",
    "ShardedFormation",
    "TopKIndex",
    "get_backend",
    # kernel layer
    "DEFAULT_KERNELS",
    "KERNEL_MODES",
    "get_kernel_threads",
    "get_kernels",
    "parallel_available",
    "set_kernel_threads",
    "set_kernels",
    "use_kernel_threads",
    "use_kernels",
    # group recommendation
    "GroupRecommender",
    "group_item_scores",
    "group_satisfaction",
    "recommend_top_k",
    # grouping containers
    "Group",
    "GroupFormationResult",
    "evaluate_partition",
    "validate_partition",
    # algorithms
    "grd_lm",
    "grd_lm_min",
    "grd_lm_max",
    "grd_lm_sum",
    "grd_av",
    "grd_av_min",
    "grd_av_max",
    "grd_av_sum",
    "absolute_error_bound",
    "form_groups",
    "available_algorithms",
    # errors
    "ReproError",
    "RatingDataError",
    "GroupFormationError",
    "IngestError",
    "InfeasibleInstanceError",
    "SolverError",
]
