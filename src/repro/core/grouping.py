"""Group and grouping containers plus partition evaluation.

Every group-formation algorithm in the library — the greedy algorithms, the
clustering baselines and the exact solvers — returns the same
:class:`GroupFormationResult` structure so that the experiment harness,
metrics and tests can treat them interchangeably.  A result records, per
group, the member user indices, the top-k list recommended to the group under
the chosen semantics, the per-item group scores and the aggregated group
satisfaction; plus the overall objective (the sum of group satisfactions,
``Obj`` in §2.4 of the paper).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.core.aggregation import Aggregation, get_aggregation
from repro.core.errors import GroupFormationError
from repro.core.group_recommender import group_satisfaction
from repro.core.semantics import Semantics, get_semantics

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.recsys.store import RatingStore

__all__ = [
    "Group",
    "GroupFormationResult",
    "build_group",
    "validate_partition",
    "evaluate_partition",
]


@dataclass(frozen=True)
class Group:
    """One formed group together with its recommendation and satisfaction.

    Attributes
    ----------
    members:
        Positional user indices belonging to the group (non-empty, sorted).
    items:
        The top-k item indices recommended to the group, best first.
    item_scores:
        Group preference scores (under the result's semantics) of ``items``,
        aligned with ``items``.
    satisfaction:
        Aggregated satisfaction ``gs(I^k_g)`` of the group with ``items``.
    """

    members: tuple[int, ...]
    items: tuple[int, ...]
    item_scores: tuple[float, ...]
    satisfaction: float

    @property
    def size(self) -> int:
        """Number of members in the group."""
        return len(self.members)

    def as_dict(self) -> dict[str, Any]:
        """Plain-dict view (useful for JSON reporting)."""
        return {
            "members": list(self.members),
            "items": list(self.items),
            "item_scores": list(self.item_scores),
            "satisfaction": self.satisfaction,
            "size": self.size,
        }


@dataclass
class GroupFormationResult:
    """The outcome of running a group-formation algorithm on an instance.

    Attributes
    ----------
    groups:
        The formed groups (at most ``max_groups`` of them), each a
        :class:`Group`.
    objective:
        ``sum(g.satisfaction for g in groups)`` — the quantity maximised by
        the paper's optimisation problem.
    algorithm:
        Human-readable algorithm name, e.g. ``"GRD-LM-MIN"`` or
        ``"Baseline-AV-SUM"``.
    semantics:
        The :class:`~repro.core.semantics.Semantics` used.
    aggregation:
        The :class:`~repro.core.aggregation.Aggregation` used.
    k:
        Length of each group's recommended list.
    max_groups:
        The group budget ℓ the algorithm was run with.
    extras:
        Free-form metadata (timings, intermediate group counts, the
        pseudocode score of the left-over group, solver gap, ...).
    """

    groups: list[Group]
    objective: float
    algorithm: str
    semantics: Semantics
    aggregation: Aggregation
    k: int
    max_groups: int
    extras: dict[str, Any] = field(default_factory=dict)

    @property
    def n_groups(self) -> int:
        """Number of groups actually formed."""
        return len(self.groups)

    @property
    def group_sizes(self) -> list[int]:
        """Sizes of the formed groups, in formation order."""
        return [group.size for group in self.groups]

    @property
    def n_users(self) -> int:
        """Total number of users covered by the grouping."""
        return sum(self.group_sizes)

    def members_partition(self) -> list[tuple[int, ...]]:
        """The member tuples of every group (the raw partition)."""
        return [group.members for group in self.groups]

    def average_satisfaction(self) -> float:
        """Mean group satisfaction across the formed groups."""
        if not self.groups:
            return 0.0
        return self.objective / len(self.groups)

    def group_of_user(self, user: int) -> int:
        """Index (within ``groups``) of the group containing ``user``."""
        for idx, group in enumerate(self.groups):
            if user in group.members:
                return idx
        raise KeyError(f"user {user} is not part of any group in this result")

    def as_dict(self) -> dict[str, Any]:
        """Plain-dict view of the result (useful for JSON reporting)."""
        return {
            "algorithm": self.algorithm,
            "semantics": self.semantics.value,
            "aggregation": self.aggregation.name,
            "k": self.k,
            "max_groups": self.max_groups,
            "objective": self.objective,
            "n_groups": self.n_groups,
            "groups": [group.as_dict() for group in self.groups],
            "extras": dict(self.extras),
        }

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.algorithm}: {self.n_groups} groups over {self.n_users} users, "
            f"objective {self.objective:.3f} "
            f"({self.semantics.short_name}/{self.aggregation.name}, k={self.k})"
        )


def build_group(
    values: "np.ndarray | RatingStore",
    members: Sequence[int],
    items: Sequence[int],
    semantics: Semantics,
    aggregation: Aggregation,
) -> Group:
    """Score a fixed recommended list for ``members`` and build the :class:`Group`.

    Unlike :func:`evaluate_partition` the recommended ``items`` are given, not
    recomputed — this is the step the greedy algorithms perform for each
    selected intermediate group, whose list is the members' shared top-k
    sequence.  ``values`` may also be a
    :class:`~repro.recsys.store.RatingStore`, in which case only the
    ``(members, items)`` sub-matrix is ever densified.
    """
    members = tuple(int(user) for user in members)
    items = tuple(int(item) for item in items)
    member_array = np.asarray(members)
    if isinstance(values, np.ndarray):
        scores = tuple(
            semantics.item_score(values, member_array, item) for item in items
        )
    else:
        sub = values.gather(member_array, np.asarray(items, dtype=np.int64))
        scores = tuple(
            semantics.item_score(sub, np.arange(len(members)), idx)
            for idx in range(len(items))
        )
    return Group(
        members=members,
        items=items,
        item_scores=scores,
        satisfaction=aggregation.aggregate(scores),
    )


def validate_partition(
    partition: Iterable[Sequence[int]], n_users: int, max_groups: int | None = None
) -> list[tuple[int, ...]]:
    """Validate that ``partition`` is a disjoint cover of ``0..n_users-1``.

    Parameters
    ----------
    partition:
        Iterable of member-index collections.
    n_users:
        Expected number of users.
    max_groups:
        When given, also check that the partition uses at most this many
        groups.

    Returns
    -------
    list of tuple of int
        The partition with each block sorted and converted to a tuple.

    Raises
    ------
    GroupFormationError
        If a block is empty, a user appears twice, a user is missing, an
        index is out of range, or the group budget is exceeded.
    """
    blocks: list[tuple[int, ...]] = []
    seen: set[int] = set()
    for block in partition:
        members = tuple(sorted(int(u) for u in block))
        if not members:
            raise GroupFormationError("a group in the partition is empty")
        for user in members:
            if not 0 <= user < n_users:
                raise GroupFormationError(
                    f"user index {user} out of range [0, {n_users})"
                )
            if user in seen:
                raise GroupFormationError(f"user {user} appears in more than one group")
            seen.add(user)
        blocks.append(members)
    missing = set(range(n_users)) - seen
    if missing:
        raise GroupFormationError(
            f"partition does not cover users {sorted(missing)[:10]}"
            + ("..." if len(missing) > 10 else "")
        )
    if max_groups is not None and len(blocks) > max_groups:
        raise GroupFormationError(
            f"partition uses {len(blocks)} groups, exceeding the budget {max_groups}"
        )
    return blocks


def evaluate_partition(
    values: np.ndarray,
    partition: Iterable[Sequence[int]],
    k: int,
    semantics: Semantics | str,
    aggregation: Aggregation | str,
    algorithm: str = "partition",
    max_groups: int | None = None,
    extras: dict[str, Any] | None = None,
) -> GroupFormationResult:
    """Score an arbitrary user partition under a semantics and aggregation.

    For every block of the partition the group's top-k list, per-item group
    scores and aggregated satisfaction are computed with the group
    recommender; the objective is their sum.  This is the single evaluation
    path shared by the greedy algorithms (for the left-over group), the
    baselines and the exact solvers, which guarantees all algorithms are
    compared on exactly the same objective.

    Parameters
    ----------
    values:
        Complete ``(n_users, n_items)`` rating array.
    partition:
        Iterable of member-index collections forming a disjoint cover of all
        users.
    k, semantics, aggregation:
        Problem parameters (see :func:`~repro.core.group_recommender.group_satisfaction`).
    algorithm:
        Name recorded on the returned result.
    max_groups:
        Group budget recorded on the result (defaults to the number of
        blocks); also validated when provided.
    extras:
        Optional metadata dict copied onto the result.
    """
    if isinstance(values, np.ndarray) or not hasattr(values, "iter_blocks"):
        values = np.asarray(values, dtype=float)
    semantics = get_semantics(semantics)
    aggregation = get_aggregation(aggregation)
    blocks = validate_partition(partition, values.shape[0], max_groups)
    groups: list[Group] = []
    for members in blocks:
        items, scores, satisfaction = group_satisfaction(
            values, members, k, semantics, aggregation
        )
        groups.append(
            Group(
                members=members,
                items=items,
                item_scores=scores,
                satisfaction=satisfaction,
            )
        )
    objective = float(sum(group.satisfaction for group in groups))
    return GroupFormationResult(
        groups=groups,
        objective=objective,
        algorithm=algorithm,
        semantics=semantics,
        aggregation=aggregation,
        k=k,
        max_groups=max_groups if max_groups is not None else len(groups),
        extras=dict(extras or {}),
    )
