"""Group-satisfaction aggregation over a recommended top-k list (paper §2.3, §6).

Once a group's top-k item list and the per-item group scores (under LM or AV
semantics) are known, an *aggregation function* collapses the ``k`` scores
into the group's satisfaction with the list:

* **Max** — the score of the very top item, ``sc(g, i^1)``.
* **Min** — the score of the bottom (k-th) item, ``sc(g, i^k)``.
* **Sum** — the sum of scores over the whole list.
* **Weighted Sum** (paper §6 extension) — a positional weighting of the Sum,
  with weights inversely proportional to the position or its logarithm
  (DCG-style).

All aggregators receive the list of group scores *in recommended rank order*
(position 1 first) so positional weights are well defined.  When ``k == 1``
all aggregations coincide, as noted in the paper.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence

import numpy as np

__all__ = [
    "Aggregation",
    "MaxAggregation",
    "MinAggregation",
    "SumAggregation",
    "WeightedSumAggregation",
    "get_aggregation",
]


class Aggregation(ABC):
    """Base class for top-k score aggregation functions."""

    #: Canonical lower-case name (``"min"``, ``"max"``, ``"sum"``, ...).
    name: str = "abstract"

    @abstractmethod
    def aggregate(self, scores_in_rank_order: Sequence[float]) -> float:
        """Collapse the ranked list of group scores into a satisfaction value.

        Parameters
        ----------
        scores_in_rank_order:
            Group scores of the recommended items, best item first.  Must be
            non-empty.
        """

    def _validate(self, scores: Sequence[float]) -> np.ndarray:
        array = np.asarray(list(scores), dtype=float)
        if array.size == 0:
            raise ValueError(f"{type(self).__name__} requires a non-empty score list")
        return array

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.__dict__ == getattr(
            other, "__dict__", None
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, tuple(sorted(self.__dict__.items()))))


class MaxAggregation(Aggregation):
    """Satisfaction is the score of the top (first) recommended item."""

    name = "max"

    def aggregate(self, scores_in_rank_order: Sequence[float]) -> float:
        scores = self._validate(scores_in_rank_order)
        return float(scores[0])


class MinAggregation(Aggregation):
    """Satisfaction is the score of the bottom (k-th) recommended item."""

    name = "min"

    def aggregate(self, scores_in_rank_order: Sequence[float]) -> float:
        scores = self._validate(scores_in_rank_order)
        return float(scores[-1])


class SumAggregation(Aggregation):
    """Satisfaction is the sum of scores over the whole recommended list."""

    name = "sum"

    def aggregate(self, scores_in_rank_order: Sequence[float]) -> float:
        scores = self._validate(scores_in_rank_order)
        return float(scores.sum())


class WeightedSumAggregation(Aggregation):
    """Positionally weighted Sum aggregation (paper §6, "weights at the item
    list level").

    Parameters
    ----------
    scheme:
        ``"inverse"`` gives position ``p`` (1-based) weight ``1 / p``;
        ``"log"`` gives the DCG-style weight ``1 / log2(p + 1)``.
    normalize:
        When ``True`` the weights are scaled to sum to ``k`` so that the
        weighted value stays on the same scale as plain Sum aggregation
        (useful when comparing objective values across aggregators).
    """

    name = "weighted-sum"

    def __init__(self, scheme: str = "inverse", normalize: bool = False) -> None:
        if scheme not in {"inverse", "log"}:
            raise ValueError(
                f"scheme must be 'inverse' or 'log', got {scheme!r}"
            )
        self.scheme = scheme
        self.normalize = bool(normalize)

    def weights(self, k: int) -> np.ndarray:
        """The positional weight vector for a list of length ``k``."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        positions = np.arange(1, k + 1, dtype=float)
        if self.scheme == "inverse":
            weights = 1.0 / positions
        else:
            weights = 1.0 / np.log2(positions + 1.0)
        if self.normalize:
            weights = weights * (k / weights.sum())
        return weights

    def aggregate(self, scores_in_rank_order: Sequence[float]) -> float:
        scores = self._validate(scores_in_rank_order)
        return float((scores * self.weights(scores.size)).sum())


_FACTORIES = {
    "max": MaxAggregation,
    "min": MinAggregation,
    "sum": SumAggregation,
    "weighted-sum": WeightedSumAggregation,
    "weighted-sum-inverse": lambda: WeightedSumAggregation(scheme="inverse"),
    "weighted-sum-log": lambda: WeightedSumAggregation(scheme="log"),
}


def get_aggregation(name: str | Aggregation) -> Aggregation:
    """Resolve an aggregation name or instance to an :class:`Aggregation`.

    Accepts ``"min"``, ``"max"``, ``"sum"``, ``"weighted-sum"``,
    ``"weighted-sum-inverse"``, ``"weighted-sum-log"`` (case-insensitive), or
    an existing :class:`Aggregation` instance (returned unchanged).

    Examples
    --------
    >>> get_aggregation("Min").name
    'min'
    >>> get_aggregation(SumAggregation()).name
    'sum'
    """
    if isinstance(name, Aggregation):
        return name
    key = str(name).strip().lower()
    if key not in _FACTORIES:
        known = ", ".join(sorted(_FACTORIES))
        raise ValueError(f"unknown aggregation {name!r}; expected one of: {known}")
    return _FACTORIES[key]()
