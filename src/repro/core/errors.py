"""Exception hierarchy for the :mod:`repro` library.

All library-specific failures derive from :class:`ReproError` so downstream
applications can catch a single base class.  The specific subclasses mirror
the main failure modes of the public API: malformed rating data, invalid
group-formation parameters, and infeasible exact-solver instances.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "RatingDataError",
    "GroupFormationError",
    "IngestError",
    "InfeasibleInstanceError",
    "SolverError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class RatingDataError(ReproError):
    """Raised when rating data is malformed or inconsistent.

    Examples include duplicate ``(user, item)`` pairs with conflicting
    ratings, ratings outside the declared scale, or an empty rating matrix
    fed to an algorithm that needs at least one user and one item.
    """


class GroupFormationError(ReproError):
    """Raised when group-formation parameters are invalid for the instance.

    For instance requesting ``k`` larger than the number of items, or a group
    budget ``max_groups`` smaller than 1.
    """


class IngestError(ReproError):
    """Raised by the durable ingestion layer (:mod:`repro.ingest`).

    Covers malformed feedback events, write-ahead-log misuse (appending to
    a closed log), and snapshot/recovery state that cannot be adopted
    (e.g. a snapshot whose ``k_max`` differs from the service
    configuration).  Torn or checksum-corrupt WAL *tail* records are not
    errors — recovery treats them as the unacknowledged end of the log.
    """


class InfeasibleInstanceError(ReproError):
    """Raised by exact solvers when the instance admits no feasible partition."""


class SolverError(ReproError):
    """Raised when an exact solver backend fails unexpectedly."""
