"""Sharded greedy formation: million-user instances in bounded memory.

The greedy GRD skeleton has a property the dense engine never exploited: the
bucket key of a user depends only on *her own* top-k prefix, never on other
users.  Partitioning the user axis into contiguous shards therefore commutes
with step 1 of the algorithm — each shard can be densified, ranked and
bucketed independently (optionally on a pool of workers), and shard-level
buckets with equal keys are *exactly* the global intermediate groups once
merged.  Step 2 (greedy selection under the ℓ-group budget) and step 3
(scoring, budget filling, left-over group) then run once on the merged
bucket summaries, through the same
:func:`~repro.core.engine.finalise_plan` path as the in-memory engine.

Memory: only one shard block (``ceil(n_users / shards) x n_items`` floats
per worker) plus the ``(n_users, k)`` top-k summaries are ever dense, which
is what lets a 1M-user x 10k-item sparse instance form groups in a few GB
where the dense matrix alone would need ~80 GB.

Objective-loss bound (documented contract, asserted by
``tests/core/test_sharded.py``):

* ``shards=1`` is **bit-identical** to ``FormationEngine.run`` on the same
  backend-independent result — same groups, objective and bookkeeping.
* For ``shards > 1`` the merge is exact at the bucket level, so the *only*
  possible deviation from the unsharded run is floating-point
  re-association when an AV variant's per-bucket member-contribution sums
  are folded across shards (LM variants share one contribution per bucket
  and are always bit-identical).  A perturbed sum can only swap the
  selection order of two buckets whose scores differ by less than the
  accumulated rounding error ``n_g · ε · max|contribution|`` (``n_g`` =
  bucket size, ``ε`` = machine epsilon); each swap changes the objective by
  at most the satisfaction gap of the swapped buckets, itself bounded by
  ``k · r_max``.  Hence ``|Obj_sharded − Obj_unsharded| ≤ ℓ · k · r_max``
  in the adversarial worst case — and **zero** (bit-identical) whenever
  ratings are integer-valued on the scale, as in every bundled dataset,
  because small-integer sums are exact in ``float64`` regardless of
  association.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import kernels
from repro.core.aggregation import Aggregation
from repro.core.engine import (
    FormationPlan,
    NumpyBackend,
    coerce_store,
    finalise_plan,
)
from repro.core.greedy_framework import GreedyVariant, make_variant
from repro.core.grouping import GroupFormationResult
from repro.core.semantics import Semantics
from repro.recsys.matrix import RatingMatrix
from repro.recsys.store import DEFAULT_BLOCK_USERS, RatingStore
from repro.utils.timing import Stopwatch
from repro.utils.validation import require_positive_int
from repro.core.errors import GroupFormationError

__all__ = [
    "ShardedFormation",
    "ShardSummary",
    "form_from_summaries",
    "merge_summaries",
    "plan_from_summaries",
    "shard_bounds",
    "summarise_shard",
    "summarise_store_shard",
    "summarise_tables",
]


def shard_bounds(n_users: int, shards: int) -> np.ndarray:
    """Contiguous shard boundaries over the user axis.

    Parameters
    ----------
    n_users:
        Total number of users being partitioned.
    shards:
        Requested shard count (capped at ``n_users``).

    Returns
    -------
    numpy.ndarray
        ``int64`` array of ``min(shards, n_users) + 1`` boundaries;
        shard ``s`` covers users ``bounds[s]:bounds[s + 1]``.
    """
    n_shards = min(shards, n_users)
    return np.linspace(0, n_users, n_shards + 1).astype(np.int64)


@dataclass
class ShardSummary:
    """Bucket-level digest of one user shard (step 1 output).

    Attributes
    ----------
    start:
        First global user index of the shard.
    keys:
        ``(n_buckets, width)`` packed ``uint64`` key rows (one per bucket,
        in key-sorted order) — comparing rows for equality is exactly the
        reference backend's byte-key equality.
    items_rows:
        ``(n_buckets, k)`` shared top-k item sequence of each bucket (the
        recommended list if the bucket is selected).
    reps:
        Global index of each bucket's first (smallest-index) member.
    scores:
        Bucket heap-score contribution of the shard: the full score for
        ``combine="first"`` variants, a partial sum for ``combine="sum"``.
    members:
        Per bucket, the ascending global user indices of the shard's
        members.
    contributions:
        ``(shard_size,)`` per-user personal aggregated top-k values, in
        shard-local user order.
    """

    start: int
    keys: np.ndarray
    items_rows: np.ndarray
    reps: np.ndarray
    scores: np.ndarray
    members: list[np.ndarray]
    contributions: np.ndarray


def summarise_shard(
    block: np.ndarray, start: int, k: int, variant: GreedyVariant
) -> ShardSummary:
    """Rank, bucket and score one dense shard block (users ``start..``).

    Parameters
    ----------
    block:
        Dense ``(shard_size, n_items)`` rating rows of the shard.
    start:
        Global index of the shard's first user.
    k:
        Top-k prefix length of the run.
    variant:
        The greedy variant being executed (defines key and contributions).

    Returns
    -------
    ShardSummary
        The shard's bucket-level digest.
    """
    items_table, scores_table = kernels.top_k_table(block, k, assume_finite=True)
    return summarise_tables(items_table, scores_table, start, variant)


def summarise_store_shard(
    store: RatingStore,
    start: int,
    stop: int,
    k: int,
    variant: GreedyVariant,
    block_users: int | None = None,
) -> ShardSummary:
    """Summarise users ``start:stop`` of a store, densifying blockwise.

    This is the per-shard unit of work shared by :class:`ShardedFormation`
    and the online :class:`~repro.service.FormationService` (which caches
    summaries per shard and recomputes only the shards whose users
    changed).  Ranking is row-independent, so sub-blocking the
    densification never changes results.

    Parameters
    ----------
    store:
        Rating storage the shard is read from.
    start, stop:
        Global user range of the shard.
    k:
        Top-k prefix length of the run.
    variant:
        The greedy variant being executed.
    block_users:
        Cap on rows densified at once (default:
        :data:`~repro.recsys.store.DEFAULT_BLOCK_USERS`).

    Returns
    -------
    ShardSummary
        The shard's bucket-level digest.
    """
    block_cap = block_users or DEFAULT_BLOCK_USERS
    if stop - start <= block_cap:
        return summarise_shard(store.block(start, stop), start, k, variant)
    pieces_items = []
    pieces_scores = []
    for sub_start in range(start, stop, block_cap):
        sub_stop = min(sub_start + block_cap, stop)
        items_table, scores_table = kernels.top_k_table(
            store.block(sub_start, sub_stop), k, assume_finite=True
        )
        pieces_items.append(items_table)
        pieces_scores.append(scores_table)
    return summarise_tables(
        np.vstack(pieces_items), np.vstack(pieces_scores), start, variant
    )


def merge_summaries(
    summaries: list[ShardSummary], combine: str
) -> tuple[np.ndarray, np.ndarray, list[np.ndarray], np.ndarray]:
    """Merge shard bucket digests into the global intermediate groups.

    Shards must be in ascending user order; the stable key grouping
    (:func:`repro.core.kernels.group_key_rows` — lexsort under ``classic``
    kernels, collision-checked fingerprints under ``fast``) then keeps each
    merged bucket's constituents in shard order, so concatenated member
    arrays are ascending and the first constituent's representative is the
    global (smallest-index) representative — matching the unsharded engine.
    Only the merged buckets' *enumeration order* depends on the kernel
    generation, which no consumer reads (selection totally orders buckets
    by ``(score, representative)``).

    Parameters
    ----------
    summaries:
        Per-shard digests in ascending user order.
    combine:
        The variant's combine rule — ``"first"`` (LM) or ``"sum"`` (AV).

    Returns
    -------
    tuple
        ``(scores, reps, members, items_rows)`` over the merged buckets.
    """
    all_keys = np.vstack([s.keys for s in summaries])
    bucket_scores = np.concatenate([s.scores for s in summaries])
    bucket_reps = np.concatenate([s.reps for s in summaries])
    bucket_members: list[np.ndarray] = [m for s in summaries for m in s.members]
    bucket_items = np.vstack([s.items_rows for s in summaries])

    n_total = all_keys.shape[0]
    order, new_segment = kernels.group_key_rows(all_keys)
    starts = np.flatnonzero(new_segment)
    ends = np.append(starts[1:], n_total)

    merged_scores = np.empty(starts.size, dtype=np.float64)
    merged_reps = np.empty(starts.size, dtype=np.int64)
    merged_members: list[np.ndarray] = []
    merged_items = np.empty((starts.size, bucket_items.shape[1]), dtype=np.int64)
    for b in range(starts.size):
        constituents = order[starts[b]:ends[b]]
        first = constituents[0]
        merged_reps[b] = bucket_reps[first]
        merged_items[b] = bucket_items[first]
        merged_members.append(
            np.concatenate([bucket_members[c] for c in constituents])
            if constituents.size > 1
            else bucket_members[first]
        )
        if combine == "sum":
            # Sequential fold in shard order: exact for integer-valued
            # ratings; see the module docstring for the general FP bound.
            total = 0.0
            for c in constituents:
                total += bucket_scores[c]
            merged_scores[b] = total
        else:
            merged_scores[b] = bucket_scores[first]
    return merged_scores, merged_reps, merged_members, merged_items


def plan_from_summaries(
    summaries: list[ShardSummary],
    variant: GreedyVariant,
    n_users: int,
    max_groups: int,
) -> tuple[FormationPlan, list[np.ndarray]]:
    """Merge shard summaries and greedily select under the group budget.

    Steps 2 of the algorithm over already-summarised shards: merge bucket
    digests exactly by key, pick the ``max_groups - 1`` best buckets
    (highest score first, ties by smallest representative — the engine's
    total order), and package the outcome as the backend-independent
    :class:`~repro.core.engine.FormationPlan`.

    Parameters
    ----------
    summaries:
        Per-shard digests in ascending user order (one per shard).
    variant:
        The greedy variant being executed.
    n_users:
        Total user count covered by the summaries.
    max_groups:
        Group budget ℓ.

    Returns
    -------
    tuple
        ``(plan, selected_items_rows)`` ready for
        :func:`~repro.core.engine.finalise_plan`.
    """
    scores, reps, members, items_rows = merge_summaries(summaries, variant.combine)
    contributions = np.concatenate([s.contributions for s in summaries])

    n_buckets = scores.size
    n_select = min(max_groups - 1, n_buckets)
    chosen = np.lexsort((reps, -scores))[:n_select]
    selected = [
        (tuple(int(u) for u in members[b]), int(reps[b])) for b in chosen
    ]
    selected_mask = np.zeros(n_users, dtype=bool)
    for b in chosen:
        selected_mask[members[b]] = True
    remaining_users = [int(u) for u in np.flatnonzero(~selected_mask)]

    plan = FormationPlan(
        selected=selected,
        remaining_users=remaining_users,
        n_intermediate_groups=int(n_buckets),
        user_values=lambda users: contributions[np.asarray(users, dtype=np.int64)],
    )
    return plan, [items_rows[b] for b in chosen]


def form_from_summaries(
    store: RatingStore,
    summaries: list[ShardSummary],
    variant: GreedyVariant,
    max_groups: int,
    k: int,
    extra_extras: dict | None = None,
) -> GroupFormationResult:
    """Run steps 2–3 over prepared shard summaries and score the result.

    The entry point the online serving layer uses: shard summaries may be
    freshly computed or recycled from a cache (only shards whose users
    changed need recomputation), and this function turns whatever mix it
    is given into a final scored :class:`GroupFormationResult` through the
    exact :func:`~repro.core.engine.finalise_plan` path of the engine.

    Parameters
    ----------
    store:
        Rating storage used to score the selected groups.
    summaries:
        Per-shard digests in ascending user order covering every user.
    variant:
        The greedy variant being executed.
    max_groups:
        Group budget ℓ.
    k:
        Top-k prefix length of the run.
    extra_extras:
        Extra bookkeeping merged into the result's ``extras``.

    Returns
    -------
    GroupFormationResult
        Same contract as ``FormationEngine.run`` (see the parity notes in
        the module docstring).
    """
    watch = Stopwatch()
    with watch.lap("formation"):
        plan, selected_items_rows = plan_from_summaries(
            summaries, variant, store.shape[0], max_groups
        )
    return finalise_plan(
        store,
        plan,
        selected_items_rows,
        k,
        variant,
        max_groups,
        watch,
        backend_name="numpy",
        extra_extras=extra_extras,
    )


class ShardedFormation:
    """Greedy formation over user shards with bounded peak memory.

    Parameters
    ----------
    shards:
        Number of contiguous user partitions (≥ 1).
    workers:
        Degree of parallelism for concurrent shard summarisation; ``None``
        or 1 runs shards sequentially.
    block_users:
        Cap on rows densified at once *within* a shard (default:
        :data:`~repro.recsys.store.DEFAULT_BLOCK_USERS`), so the dense
        working set stays bounded even when few, large shards are
        requested.  Ranking is row-independent, so the sub-blocking never
        changes results.
    execution:
        Execution strategy for the shard fan-out: ``"serial"``,
        ``"threads"``, ``"processes"``, or a prebuilt
        :class:`~repro.execution.executor.Executor` (kept open — the
        caller owns its lifetime).  ``None`` keeps the historical
        behaviour: threads when ``workers > 1``, serial otherwise.
        ``"processes"`` escapes the GIL entirely by exporting the store to
        shared memory and attaching workers zero-copy
        (:mod:`repro.execution`); results are identical to the serial
        path for every strategy.
    cache_dir:
        Optional :class:`~repro.execution.cache.ArtifactCache` directory:
        per-shard summaries are persisted keyed by (store fingerprint,
        ``k``, variant, shard range), so repeat runs over unchanged
        ratings skip summarisation entirely.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.sharded import ShardedFormation
    >>> ratings = np.array(
    ...     [[1, 4, 3], [2, 3, 5], [2, 5, 1], [2, 5, 1], [3, 1, 1], [1, 2, 5]],
    ...     dtype=float,
    ... )
    >>> ShardedFormation(shards=3).run(ratings, max_groups=3, k=1).objective
    11.0
    """

    def __init__(
        self,
        shards: int = 1,
        workers: int | None = None,
        block_users: int | None = None,
        execution: "str | object | None" = None,
        cache_dir: "str | None" = None,
    ) -> None:
        self.shards = require_positive_int(shards, "shards")
        if workers is not None:
            workers = require_positive_int(workers, "workers")
        self.workers = workers
        if block_users is not None:
            block_users = require_positive_int(block_users, "block_users")
        self.block_users = block_users
        self.execution = execution
        self.cache_dir = cache_dir

    def run(
        self,
        ratings: RatingStore | RatingMatrix | np.ndarray,
        max_groups: int,
        k: int,
        semantics: Semantics | str = "lm",
        aggregation: Aggregation | str = "min",
    ) -> GroupFormationResult:
        """Run one greedy formation through the sharded path.

        Parameters
        ----------
        ratings:
            A complete array, :class:`~repro.recsys.matrix.RatingMatrix`,
            or any :class:`~repro.recsys.store.RatingStore`.
        max_groups:
            Group budget ℓ.
        k:
            Recommended-list length.
        semantics:
            ``"lm"`` / ``"av"`` or a :class:`~repro.core.semantics.Semantics`.
        aggregation:
            ``"min"`` / ``"max"`` / ``"sum"`` / a weighted-sum name, or an
            :class:`~repro.core.aggregation.Aggregation` instance.

        Returns
        -------
        GroupFormationResult
            See the module docstring for the parity guarantees versus the
            unsharded engine.
        """
        return self.run_variant(
            ratings, max_groups, k, make_variant(semantics, aggregation)
        )

    def run_variant(
        self,
        ratings: RatingStore | RatingMatrix | np.ndarray,
        max_groups: int,
        k: int,
        variant: GreedyVariant,
    ) -> GroupFormationResult:
        """Run one prebuilt variant through the sharded path.

        Parameters
        ----------
        ratings:
            A complete array, :class:`~repro.recsys.matrix.RatingMatrix`,
            or any :class:`~repro.recsys.store.RatingStore`.
        max_groups:
            Group budget ℓ.
        k:
            Recommended-list length.
        variant:
            A prebuilt :class:`~repro.core.greedy_framework.GreedyVariant`.

        Returns
        -------
        GroupFormationResult
            See the module docstring for the parity guarantees.
        """
        store = coerce_store(ratings)
        n_users, n_items = store.shape
        max_groups = require_positive_int(max_groups, "max_groups")
        k = require_positive_int(k, "k")
        if k > n_items:
            raise GroupFormationError(
                f"k={k} exceeds the number of items ({n_items})"
            )
        bounds = shard_bounds(n_users, self.shards)
        n_shards = bounds.size - 1

        watch = Stopwatch()
        with watch.lap("formation"):
            summaries, bookkeeping = self._summarise(store, bounds, k, variant)
            plan, selected_items_rows = plan_from_summaries(
                summaries, variant, n_users, max_groups
            )

        return finalise_plan(
            store,
            plan,
            selected_items_rows,
            k,
            variant,
            max_groups,
            watch,
            backend_name="numpy",
            extra_extras={
                "n_shards": int(n_shards),
                "store": type(store).__name__,
                # bookkeeping carries the *resolved* worker count (an
                # execution strategy may default workers to the CPU count).
                **bookkeeping,
            },
        )

    # ------------------------------------------------------------------ #

    def _summarise(
        self,
        store: RatingStore,
        bounds: np.ndarray,
        k: int,
        variant: GreedyVariant,
    ) -> tuple[list[ShardSummary], dict]:
        """Summarise every shard through the configured execution strategy.

        The shard fan-out runs on the executor resolved from ``execution``
        / ``workers`` (serial loop, thread pool, or shared-memory process
        pool — see :mod:`repro.execution`); with a ``cache_dir``, shard
        summaries are first looked up in the
        :class:`~repro.execution.cache.ArtifactCache` and only the missing
        shards are computed (and persisted).

        Parameters
        ----------
        store:
            Rating storage the shards are read from.
        bounds:
            Shard boundaries from :func:`shard_bounds`.
        k:
            Top-k prefix length of the run.
        variant:
            The greedy variant being executed.

        Returns
        -------
        tuple
            ``(summaries, bookkeeping)`` — one digest per shard in
            ascending user order, plus extras describing the execution
            (executor name, cache hit counts).
        """
        from repro.execution.executor import executor_scope

        cache = fingerprint = None
        summaries: list[ShardSummary | None] = [None] * (bounds.size - 1)
        cache_hits = 0
        if self.cache_dir is not None:
            from repro.execution.cache import ArtifactCache, store_fingerprint

            cache = ArtifactCache(self.cache_dir)
            fingerprint = store_fingerprint(store)
            for shard in range(bounds.size - 1):
                summaries[shard] = cache.load_summary(
                    fingerprint, k, variant, int(bounds[shard]), int(bounds[shard + 1])
                )
            cache_hits = sum(1 for s in summaries if s is not None)

        missing = [s for s in range(bounds.size - 1) if summaries[s] is None]
        with executor_scope(self.execution, self.workers) as executor:
            executor_name = executor.name
            if missing:
                computed = executor.map_shards(
                    store,
                    bounds,
                    k,
                    variant,
                    block_users=self.block_users,
                    shard_ids=missing,
                )
                for shard, summary in zip(missing, computed):
                    summaries[shard] = summary
                    if cache is not None:
                        cache.save_summary(
                            fingerprint,
                            k,
                            variant,
                            int(bounds[shard]),
                            int(bounds[shard + 1]),
                            summary,
                        )
            effective_workers = 1 if executor.name == "serial" else int(executor.workers)
        bookkeeping = {
            "execution": executor_name,
            "workers": effective_workers,
            "summary_cache_hits": int(cache_hits),
            "summary_cache_misses": int(len(missing)),
        }
        return [s for s in summaries if s is not None], bookkeeping


def summarise_tables(
    items_table: np.ndarray,
    scores_table: np.ndarray,
    start: int,
    variant: GreedyVariant,
) -> ShardSummary:
    """:func:`summarise_shard` for already-ranked top-k tables.

    This is how the serving layer summarises a shard straight from its
    incrementally maintained :class:`~repro.core.topk_index.MutableTopKIndex`
    slices — skipping densification and ranking entirely — which is
    bit-identical to summarising from the store because the index maintains
    build parity.

    Parameters
    ----------
    items_table, scores_table:
        The shard's ``(shard_size, k)`` ranked top-k tables.
    start:
        Global index of the shard's first user.
    variant:
        The greedy variant being executed.

    Returns
    -------
    ShardSummary
        The shard's bucket-level digest.
    """
    # Pack once and reuse the matrix for both the grouping and the summary
    # keys (the engine's _bucketize would pack a second time internally).
    packed = kernels.pack_key_rows(items_table, scores_table, variant.key_scores)
    n_users = items_table.shape[0]
    sorted_users, new_segment = kernels.group_key_rows(packed)
    starts = np.flatnonzero(new_segment)
    inverse = np.empty(n_users, dtype=np.int64)
    inverse[sorted_users] = np.cumsum(new_segment) - 1
    contributions = NumpyBackend._contributions(scores_table, variant.aggregation)
    n_buckets = starts.size
    ends = np.append(starts[1:], n_users)
    reps_local = sorted_users[starts]
    scores = kernels.bucket_reduce(
        inverse, contributions, n_buckets, variant.combine, reps_local
    )
    members = [
        sorted_users[starts[b]:ends[b]].astype(np.int64) + start
        for b in range(n_buckets)
    ]
    return ShardSummary(
        start=start,
        keys=packed[reps_local],
        items_rows=items_table[reps_local],
        reps=reps_local.astype(np.int64) + start,
        scores=scores,
        members=members,
        contributions=contributions,
    )
