"""Group recommendation engine: top-k lists and satisfaction for a *given* group.

This is the substrate the paper assumes exists (§1, §2): given a group of
users, a semantics (LM or AV), and a list length ``k``, produce the top-k
item list recommended to the group and the group's satisfaction with it under
a chosen aggregation.  The group-formation algorithms call into this module
to evaluate the groups they build (most importantly the left-over ℓ-th
group), and the experiment harness uses it to score groupings produced by the
baselines and the exact solvers.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro.core.aggregation import Aggregation, get_aggregation
from repro.core.errors import GroupFormationError
from repro.core.semantics import Semantics, get_semantics
from repro.recsys.matrix import RatingMatrix

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.recsys.store import RatingStore

__all__ = [
    "group_item_scores",
    "recommend_top_k",
    "group_satisfaction",
    "GroupRecommender",
]


#: Target dense working-set (in float64 elements, ~256 MB) of one chunk of
#: the streaming reduction over a :class:`~repro.recsys.store.RatingStore`.
#: Groups that fit one chunk keep the floating-point summation order of the
#: AV semantics identical to the dense path; larger groups fold chunk
#: partials together (exact for LM — min is associative — and for the
#: integer-valued ratings all bundled datasets produce).
_STREAM_TARGET_ELEMENTS = 1 << 25


def _is_store(ratings: object) -> bool:
    """Whether ``ratings`` is a RatingStore rather than a dense array."""
    return not isinstance(ratings, np.ndarray) and hasattr(ratings, "iter_blocks")


def _store_item_scores(
    store: "RatingStore", members: np.ndarray, semantics: Semantics
) -> np.ndarray:
    """Streaming equivalent of :meth:`Semantics.item_scores` over a store."""
    accumulated: np.ndarray | None = None
    block = max(1, _STREAM_TARGET_ELEMENTS // store.shape[1])
    for start in range(0, members.size, block):
        rows = store.rows(members[start:start + block])
        if semantics is Semantics.LEAST_MISERY:
            partial = rows.min(axis=0)
            accumulated = (
                partial if accumulated is None else np.minimum(accumulated, partial)
            )
        else:
            partial = rows.sum(axis=0)
            accumulated = partial if accumulated is None else accumulated + partial
    assert accumulated is not None
    return accumulated


def group_item_scores(
    values: "np.ndarray | RatingStore",
    members: Sequence[int],
    semantics: Semantics | str,
) -> np.ndarray:
    """Group preference score of every item for the group ``members``.

    Thin wrapper over :meth:`Semantics.item_scores` accepting semantics
    names.  ``values`` may also be a :class:`~repro.recsys.store.RatingStore`
    (e.g. a sparse CSR store), in which case member rows are densified in
    chunks so even a million-user left-over group never materialises the
    full matrix.
    """
    semantics = get_semantics(semantics)
    members = np.asarray(members, dtype=int)
    if _is_store(values):
        if members.size == 0:
            raise GroupFormationError("cannot score items for an empty group")
        return _store_item_scores(values, members, semantics)
    return semantics.item_scores(np.asarray(values, dtype=float), members)


def recommend_top_k(
    values: "np.ndarray | RatingStore",
    members: Sequence[int],
    k: int,
    semantics: Semantics | str,
) -> tuple[tuple[int, ...], tuple[float, ...]]:
    """Top-``k`` item list recommended to the group under ``semantics``.

    Items are ranked by group score descending with ties broken by ascending
    item index (the library-wide tie-break).  Returns the item indices and
    their group scores, both in recommended rank order.

    Parameters
    ----------
    values:
        Complete ``(n_users, n_items)`` rating array.
    members:
        Positional user indices of the group (non-empty).
    k:
        Length of the recommended list, ``1 <= k <= n_items``.
    semantics:
        ``"lm"`` / ``"av"`` or a :class:`~repro.core.semantics.Semantics`.
    """
    if not _is_store(values):
        values = np.asarray(values, dtype=float)
    n_items = values.shape[1]
    if not 1 <= k <= n_items:
        raise GroupFormationError(
            f"k must be between 1 and the number of items ({n_items}), got {k}"
        )
    scores = group_item_scores(values, members, semantics)
    order = np.argsort(-scores, kind="stable")[:k]
    return (
        tuple(int(item) for item in order),
        tuple(float(scores[item]) for item in order),
    )


def group_satisfaction(
    values: "np.ndarray | RatingStore",
    members: Sequence[int],
    k: int,
    semantics: Semantics | str,
    aggregation: Aggregation | str,
) -> tuple[tuple[int, ...], tuple[float, ...], float]:
    """Recommended list, its group scores, and the aggregated satisfaction.

    Returns
    -------
    (items, scores, satisfaction):
        The recommended item indices in rank order, their group scores, and
        the aggregation of those scores (``gs(I^k_g)`` in the paper).
    """
    items, scores = recommend_top_k(values, members, k, semantics)
    satisfaction = get_aggregation(aggregation).aggregate(scores)
    return items, scores, satisfaction


class GroupRecommender:
    """Object-oriented facade over the group recommendation primitives.

    Binds a complete :class:`~repro.recsys.matrix.RatingMatrix` and a
    semantics so that applications can repeatedly query recommendations for
    different groups without re-validating inputs.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.recsys import RatingMatrix
    >>> ratings = RatingMatrix(np.array([[5.0, 1.0, 3.0], [4.0, 2.0, 3.0]]))
    >>> rec = GroupRecommender(ratings, semantics="lm")
    >>> rec.recommend([0, 1], k=2)
    ((0, 2), (4.0, 3.0))
    """

    def __init__(self, ratings: RatingMatrix, semantics: Semantics | str = "lm") -> None:
        if not ratings.is_complete:
            raise GroupFormationError(
                "GroupRecommender requires a complete rating matrix; run "
                "repro.recsys.complete_matrix first"
            )
        self.ratings = ratings
        self.semantics = get_semantics(semantics)

    def item_scores(self, members: Sequence[int]) -> np.ndarray:
        """Group preference score of every item for ``members``."""
        return self.semantics.item_scores(
            self.ratings.values, np.asarray(members, dtype=int)
        )

    def recommend(
        self, members: Sequence[int], k: int
    ) -> tuple[tuple[int, ...], tuple[float, ...]]:
        """Top-``k`` items and group scores for ``members``."""
        return recommend_top_k(self.ratings.values, members, k, self.semantics)

    def satisfaction(
        self, members: Sequence[int], k: int, aggregation: Aggregation | str = "min"
    ) -> float:
        """Aggregated group satisfaction of ``members`` with their top-``k`` list."""
        _, _, value = group_satisfaction(
            self.ratings.values, members, k, self.semantics, aggregation
        )
        return value

    def recommend_labels(
        self, members: Sequence[int], k: int
    ) -> list[tuple[object, float]]:
        """Top-``k`` recommendation as ``(item_label, group_score)`` pairs."""
        items, scores = self.recommend(members, k)
        return [
            (self.ratings.item_ids[item], score) for item, score in zip(items, scores)
        ]
