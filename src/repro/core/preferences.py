"""Per-user preference lists and top-k tables.

The greedy algorithms of the paper (§4, §5) start from each user's personal
preference list ``L_u`` — the items sorted in non-increasing order of the
user's rating — and its top-k prefix.  This module builds those lists with a
single deterministic tie-breaking rule used everywhere in the library:

    *equal ratings are broken by ascending item index.*

Determinism matters both for reproducibility of the experiments and because
the greedy algorithms hash users on their exact top-k item *sequence*; a
stable tie-break keeps users with identical rating rows in the same bucket.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import GroupFormationError

__all__ = [
    "full_ranking",
    "top_k_items",
    "top_k_sequence",
    "top_k_table",
    "top_k_table_fast",
    "preference_list",
]


def _require_complete_row(row: np.ndarray) -> np.ndarray:
    row = np.asarray(row, dtype=float)
    if row.ndim != 1:
        raise GroupFormationError(f"expected a 1-D rating row, got shape {row.shape}")
    if np.isnan(row).any():
        raise GroupFormationError(
            "preference lists require a complete rating row (no NaN); "
            "complete the matrix with repro.recsys.complete_matrix first"
        )
    return row


def full_ranking(row: np.ndarray) -> np.ndarray:
    """Item indices sorted by rating descending, ties by item index ascending.

    Examples
    --------
    >>> full_ranking([3.0, 5.0, 3.0]).tolist()
    [1, 0, 2]
    """
    row = _require_complete_row(row)
    # A stable sort of the negated ratings preserves ascending item order
    # among equal ratings, which is exactly the tie-break we document.
    return np.argsort(-row, kind="stable")


def top_k_items(row: np.ndarray, k: int) -> np.ndarray:
    """The user's top-``k`` item indices in preference order."""
    row = _require_complete_row(row)
    if not 1 <= k <= row.size:
        raise GroupFormationError(
            f"k must be between 1 and the number of items ({row.size}), got {k}"
        )
    return full_ranking(row)[:k]


def top_k_sequence(row: np.ndarray, k: int) -> tuple[tuple[int, ...], tuple[float, ...]]:
    """The user's top-``k`` sequence as ``(item_ids, ratings)`` tuples.

    This is the hashable form used as (part of) the grouping key by the greedy
    algorithms: GRD-LM-MIN keys on ``(item_ids, ratings[-1])``, GRD-LM-SUM on
    ``(item_ids, ratings)`` and GRD-AV-* on ``item_ids`` alone.
    """
    items = top_k_items(row, k)
    ratings = np.asarray(row, dtype=float)[items]
    return tuple(int(i) for i in items), tuple(float(r) for r in ratings)


def _validate_table_args(values: np.ndarray, k: int) -> np.ndarray:
    values = np.asarray(values, dtype=float)
    if values.ndim != 2:
        raise GroupFormationError(
            f"expected a 2-D rating array, got shape {values.shape}"
        )
    if np.isnan(values).any():
        raise GroupFormationError(
            "top-k tables require a complete rating matrix (no NaN)"
        )
    n_items = values.shape[1]
    if not 1 <= k <= n_items:
        raise GroupFormationError(
            f"k must be between 1 and the number of items ({n_items}), got {k}"
        )
    return values


def _top_k_table_sorted(values: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Full stable argsort path (validation already done)."""
    order = np.argsort(-values, axis=1, kind="stable")[:, :k]
    scores = np.take_along_axis(values, order, axis=1)
    return order, scores


def _top_k_table_peeled(values: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Top-k via ``k`` successive vectorised argmax "peels" (validation done).

    ``np.argmax`` returns the *first* occurrence of the maximum, which is the
    lowest item index — exactly the library's tie-break — so peeling the best
    item ``k`` times reproduces the stable-sort table bit for bit.  Each peel
    is a single O(n·m) pass, so for small ``k`` this beats the O(n·m·log m)
    full sort by a wide margin.  The caller must ensure no rating is ``-inf``
    (that value is used as the mask sentinel).
    """
    n_users = values.shape[0]
    work = values.copy()
    order = np.empty((n_users, k), dtype=np.int64)
    rows = np.arange(n_users)
    for rank in range(k):
        best = np.argmax(work, axis=1)
        order[:, rank] = best
        work[rows, best] = -np.inf
    return order, np.take_along_axis(values, order, axis=1)


def top_k_table(values: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised top-``k`` items and scores for every user.

    Parameters
    ----------
    values:
        Complete ``(n_users, n_items)`` rating array.
    k:
        Top-k prefix length, ``1 <= k <= n_items``.

    Returns
    -------
    (items, scores):
        ``items`` is an ``(n_users, k)`` integer array of item indices in
        preference order (rating descending, item index ascending on ties);
        ``scores`` is the matching ``(n_users, k)`` float array of ratings.
    """
    values = _validate_table_args(values, k)
    return _top_k_table_sorted(values, k)


def _top_k_table_dispatch(
    values: np.ndarray, k: int, assume_finite: bool = False
) -> tuple[np.ndarray, np.ndarray]:
    """Pick the fastest exact top-k path (validation already done).

    Peeling wins until ``k`` grows to roughly ``m / 6`` (measured crossover);
    ``-inf`` ratings would collide with the peel's mask sentinel, so those
    fall back to the stable sort.  Callers that already validated the matrix
    as finite (the formation engine) pass ``assume_finite=True`` to skip the
    sentinel scan.  Shared by :func:`top_k_table_fast` and the engine's numpy
    backend so both always pick the same algorithm.
    """
    n_items = values.shape[1]
    if k <= max(8, n_items // 6) and (
        assume_finite or not np.isneginf(values).any()
    ):
        return _top_k_table_peeled(values, k)
    return _top_k_table_sorted(values, k)


def top_k_table_fast(values: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Exact drop-in for :func:`top_k_table` optimised for small ``k``.

    When ``k`` is small relative to the catalogue size, the table is built
    with ``k`` vectorised argmax peels (O(n·m) per peel) instead of a full
    O(n·m·log m) stable sort; otherwise it falls back to the sort.  Both
    paths implement the same tie-break (rating descending, item index
    ascending), so the output is bit-identical to :func:`top_k_table` — the
    engine's parity tests assert this.
    """
    values = _validate_table_args(values, k)
    return _top_k_table_dispatch(values, k)


def preference_list(row: np.ndarray) -> list[tuple[int, float]]:
    """The full preference list ``L_u`` as ``(item, rating)`` pairs.

    Mirrors the paper's notation, e.g. for user ``u2`` of Example 1
    ``L_u2 = <i3, 5; i2, 3; i1, 2>``.
    """
    row = _require_complete_row(row)
    ranking = full_ranking(row)
    return [(int(item), float(row[item])) for item in ranking]
