"""Per-user preference lists and top-k tables.

The greedy algorithms of the paper (§4, §5) start from each user's personal
preference list ``L_u`` — the items sorted in non-increasing order of the
user's rating — and its top-k prefix.  This module builds those lists with a
single deterministic tie-breaking rule used everywhere in the library:

    *equal ratings are broken by ascending item index.*

Determinism matters both for reproducibility of the experiments and because
the greedy algorithms hash users on their exact top-k item *sequence*; a
stable tie-break keeps users with identical rating rows in the same bucket.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import GroupFormationError

__all__ = [
    "full_ranking",
    "top_k_items",
    "top_k_sequence",
    "top_k_table",
    "preference_list",
]


def _require_complete_row(row: np.ndarray) -> np.ndarray:
    row = np.asarray(row, dtype=float)
    if row.ndim != 1:
        raise GroupFormationError(f"expected a 1-D rating row, got shape {row.shape}")
    if np.isnan(row).any():
        raise GroupFormationError(
            "preference lists require a complete rating row (no NaN); "
            "complete the matrix with repro.recsys.complete_matrix first"
        )
    return row


def full_ranking(row: np.ndarray) -> np.ndarray:
    """Item indices sorted by rating descending, ties by item index ascending.

    Examples
    --------
    >>> full_ranking([3.0, 5.0, 3.0]).tolist()
    [1, 0, 2]
    """
    row = _require_complete_row(row)
    # A stable sort of the negated ratings preserves ascending item order
    # among equal ratings, which is exactly the tie-break we document.
    return np.argsort(-row, kind="stable")


def top_k_items(row: np.ndarray, k: int) -> np.ndarray:
    """The user's top-``k`` item indices in preference order."""
    row = _require_complete_row(row)
    if not 1 <= k <= row.size:
        raise GroupFormationError(
            f"k must be between 1 and the number of items ({row.size}), got {k}"
        )
    return full_ranking(row)[:k]


def top_k_sequence(row: np.ndarray, k: int) -> tuple[tuple[int, ...], tuple[float, ...]]:
    """The user's top-``k`` sequence as ``(item_ids, ratings)`` tuples.

    This is the hashable form used as (part of) the grouping key by the greedy
    algorithms: GRD-LM-MIN keys on ``(item_ids, ratings[-1])``, GRD-LM-SUM on
    ``(item_ids, ratings)`` and GRD-AV-* on ``item_ids`` alone.
    """
    items = top_k_items(row, k)
    ratings = np.asarray(row, dtype=float)[items]
    return tuple(int(i) for i in items), tuple(float(r) for r in ratings)


def top_k_table(values: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised top-``k`` items and scores for every user.

    Parameters
    ----------
    values:
        Complete ``(n_users, n_items)`` rating array.
    k:
        Top-k prefix length, ``1 <= k <= n_items``.

    Returns
    -------
    (items, scores):
        ``items`` is an ``(n_users, k)`` integer array of item indices in
        preference order (rating descending, item index ascending on ties);
        ``scores`` is the matching ``(n_users, k)`` float array of ratings.
    """
    values = np.asarray(values, dtype=float)
    if values.ndim != 2:
        raise GroupFormationError(
            f"expected a 2-D rating array, got shape {values.shape}"
        )
    if np.isnan(values).any():
        raise GroupFormationError(
            "top-k tables require a complete rating matrix (no NaN)"
        )
    n_items = values.shape[1]
    if not 1 <= k <= n_items:
        raise GroupFormationError(
            f"k must be between 1 and the number of items ({n_items}), got {k}"
        )
    order = np.argsort(-values, axis=1, kind="stable")[:, :k]
    scores = np.take_along_axis(values, order, axis=1)
    return order, scores


def preference_list(row: np.ndarray) -> list[tuple[int, float]]:
    """The full preference list ``L_u`` as ``(item, rating)`` pairs.

    Mirrors the paper's notation, e.g. for user ``u2`` of Example 1
    ``L_u2 = <i3, 5; i2, 3; i1, 2>``.
    """
    row = _require_complete_row(row)
    ranking = full_ranking(row)
    return [(int(item), float(row[item])) for item in ranking]
