"""Greedy group formation under Least Misery semantics (paper §4).

GRD-LM-MIN (Algorithm 1) and GRD-LM-SUM form intermediate groups of users who
share the same top-k item sequence *and* the same rating(s) on the item(s)
the aggregation depends on — the bottom item for Min aggregation, all k items
for Sum aggregation — then greedily keep the ``ℓ - 1`` best intermediate
groups and merge everyone else into the ℓ-th group.

Both algorithms carry an *absolute error* guarantee with respect to the
optimal grouping (Definition 3 of the paper):

* GRD-LM-MIN: at most ``r_max`` (Theorem 2);
* GRD-LM-SUM: at most ``k * r_max`` (Theorem 3),

where ``r_max`` is the maximum value of the rating scale.
:func:`absolute_error_bound` exposes these bounds so that tests and
benchmarks can check them against the exact solvers.
"""

from __future__ import annotations

import numpy as np

from repro.core.aggregation import Aggregation, get_aggregation
from repro.core.greedy_framework import make_variant, run_greedy
from repro.core.grouping import GroupFormationResult
from repro.recsys.matrix import RatingMatrix, RatingScale

__all__ = [
    "grd_lm",
    "grd_lm_min",
    "grd_lm_max",
    "grd_lm_sum",
    "absolute_error_bound",
]


def grd_lm(
    ratings: RatingMatrix | np.ndarray,
    max_groups: int,
    k: int = 5,
    aggregation: Aggregation | str = "min",
    backend: str | None = None,
) -> GroupFormationResult:
    """Greedy group formation under LM semantics with any aggregation.

    Parameters
    ----------
    ratings:
        Complete rating matrix (:class:`~repro.recsys.matrix.RatingMatrix` or
        raw ``(n_users, n_items)`` array with no missing entries).
    max_groups:
        Group budget ℓ: at most this many non-overlapping groups are formed.
    k:
        Length of the top-k list recommended to each group.
    aggregation:
        ``"min"`` (GRD-LM-MIN), ``"sum"`` (GRD-LM-SUM), ``"max"``
        (GRD-LM-MAX, used by the paper's quality experiments) or a
        Weighted-Sum aggregation (§6 extension).
    backend:
        Formation backend (``"reference"`` / ``"numpy"``); ``None`` selects
        the engine default.  Backends produce bit-identical results.

    Returns
    -------
    GroupFormationResult
        See :func:`repro.core.greedy_framework.run_greedy` for the contents
        of ``extras``.

    Examples
    --------
    Example 1 of the paper (k = 1, ℓ = 3) yields objective 11:

    >>> import numpy as np
    >>> ratings = np.array(
    ...     [[1, 4, 3], [2, 3, 5], [2, 5, 1], [2, 5, 1], [3, 1, 1], [1, 2, 5]],
    ...     dtype=float,
    ... )
    >>> result = grd_lm(ratings, max_groups=3, k=1, aggregation="min")
    >>> result.objective
    11.0
    """
    return run_greedy(
        ratings, max_groups, k, make_variant("lm", aggregation), backend=backend
    )


def grd_lm_min(
    ratings: RatingMatrix | np.ndarray,
    max_groups: int,
    k: int = 5,
    backend: str | None = None,
) -> GroupFormationResult:
    """GRD-LM-MIN: greedy LM group formation with Min aggregation (Algorithm 1)."""
    return grd_lm(ratings, max_groups, k, aggregation="min", backend=backend)


def grd_lm_max(
    ratings: RatingMatrix | np.ndarray,
    max_groups: int,
    k: int = 5,
    backend: str | None = None,
) -> GroupFormationResult:
    """GRD-LM-MAX: greedy LM group formation with Max aggregation."""
    return grd_lm(ratings, max_groups, k, aggregation="max", backend=backend)


def grd_lm_sum(
    ratings: RatingMatrix | np.ndarray,
    max_groups: int,
    k: int = 5,
    backend: str | None = None,
) -> GroupFormationResult:
    """GRD-LM-SUM: greedy LM group formation with Sum aggregation."""
    return grd_lm(ratings, max_groups, k, aggregation="sum", backend=backend)


def absolute_error_bound(
    aggregation: Aggregation | str, scale: RatingScale, k: int
) -> float:
    """Guaranteed absolute error of the greedy LM algorithm vs the optimum.

    Theorem 2 bounds GRD-LM-MIN by ``r_max`` and Theorem 3 bounds GRD-LM-SUM
    by ``k * r_max``.  The same dominance argument bounds the Max-aggregation
    variant by ``r_max`` (only the left-over group can lose value, by at most
    one item's maximum possible score).

    Parameters
    ----------
    aggregation:
        ``"min"``, ``"max"`` or ``"sum"`` (weighted-sum uses the sum bound,
        which is conservative since positional weights are at most 1).
    scale:
        The rating scale; ``scale.maximum`` plays the role of ``r_max``.
    k:
        Length of the recommended list.
    """
    aggregation = get_aggregation(aggregation)
    r_max = scale.maximum
    if aggregation.name in {"min", "max"}:
        return float(r_max)
    return float(k * r_max)
