"""Statistical analysis of the (simulated) user study.

The paper reports, per user sample and aggregation function, the mean worker
satisfaction of GRD-LM and Baseline-LM with standard error bars, plus the
overall percentage of workers preferring each method (Figure 7).  This module
provides those summaries and a Welch two-sample t-test used to check the
"with statistical significance" claim.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np
from scipy import stats

__all__ = [
    "SampleStatistics",
    "sample_statistics",
    "welch_t_test",
    "preference_percentages",
]


@dataclass(frozen=True)
class SampleStatistics:
    """Mean, standard deviation, standard error and size of one response sample."""

    mean: float
    std: float
    stderr: float
    n: int

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view for reporting."""
        return {"mean": self.mean, "std": self.std, "stderr": self.stderr, "n": self.n}


def sample_statistics(values: Sequence[float]) -> SampleStatistics:
    """Summary statistics of a non-empty list of satisfaction responses."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ValueError("cannot summarise an empty sample")
    std = float(array.std(ddof=1)) if array.size > 1 else 0.0
    stderr = std / float(np.sqrt(array.size)) if array.size > 1 else 0.0
    return SampleStatistics(
        mean=float(array.mean()), std=std, stderr=stderr, n=int(array.size)
    )


def welch_t_test(
    sample_a: Sequence[float], sample_b: Sequence[float]
) -> tuple[float, float]:
    """Welch's unequal-variance t-test between two response samples.

    Returns ``(t_statistic, p_value)`` for the two-sided alternative.  If
    either sample has fewer than two observations or both have zero variance
    the test is undefined and ``(0.0, 1.0)`` is returned.
    """
    a = np.asarray(list(sample_a), dtype=float)
    b = np.asarray(list(sample_b), dtype=float)
    if a.size < 2 or b.size < 2:
        return 0.0, 1.0
    if np.allclose(a.std(), 0.0) and np.allclose(b.std(), 0.0):
        return 0.0, 1.0
    result = stats.ttest_ind(a, b, equal_var=False)
    return float(result.statistic), float(result.pvalue)


def preference_percentages(preference_counts: dict[str, int]) -> dict[str, float]:
    """Convert per-method preference counts into percentages summing to 100.

    Parameters
    ----------
    preference_counts:
        Mapping from method name to the number of workers who preferred it.
    """
    total = sum(preference_counts.values())
    if total <= 0:
        raise ValueError("preference counts must contain at least one vote")
    return {
        method: 100.0 * count / total for method, count in preference_counts.items()
    }
