"""Simulated Amazon Mechanical Turk user study (paper §7.3).

The paper's study cannot be re-run without AMT workers, so this subpackage
simulates it end-to-end with persona-driven synthetic raters whose
satisfaction responses are a noisy monotone function of how well a group's
recommended list matches their own preferences — the exact quantity the
group-formation algorithms compete on:

* :mod:`repro.userstudy.worker_model` — simulated workers: POI preference
  elicitation (Phase 1) and satisfaction responses on a 1–5 scale (Phase 2).
* :mod:`repro.userstudy.protocol` — the two-phase protocol: collect ratings
  from 50 workers, build similar / dissimilar / random 10-user samples, form
  ℓ = 3 groups with GRD-LM and Baseline-LM under Min and Sum aggregation,
  then collect satisfaction ratings and method preferences from fresh
  workers.
* :mod:`repro.userstudy.analysis` — means, standard errors, Welch t-tests
  and preference percentages (Figure 7).
"""

from repro.userstudy.analysis import (
    SampleStatistics,
    preference_percentages,
    sample_statistics,
    welch_t_test,
)
from repro.userstudy.protocol import (
    UserStudyConfig,
    UserStudyResult,
    run_user_study,
)
from repro.userstudy.worker_model import SimulatedWorker, generate_workers

__all__ = [
    "SimulatedWorker",
    "generate_workers",
    "UserStudyConfig",
    "UserStudyResult",
    "run_user_study",
    "SampleStatistics",
    "sample_statistics",
    "welch_t_test",
    "preference_percentages",
]
