"""Simulated AMT workers for the user-study reproduction.

A :class:`SimulatedWorker` owns a latent preference vector over the study's
POIs.  Phase 1 elicits integer 1–5 ratings from that vector (with elicitation
noise), and Phase 2 produces a 1–5 satisfaction response for a proposed
grouping: the worker imagines being one of the sample's individuals (as the
paper instructs), looks at the list recommended to that individual's group,
and reports higher satisfaction the better the list matches that individual's
stated preferences.  The response is a monotone map of the mean preference
for the recommended items plus response noise, so the study discriminates
between algorithms precisely along the dimension they optimise — without
baking in which algorithm should win.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.recsys.matrix import RatingMatrix, RatingScale
from repro.utils.rng import ensure_rng
from repro.utils.validation import require_positive_int

__all__ = ["SimulatedWorker", "generate_workers", "workers_rating_matrix"]


@dataclass
class SimulatedWorker:
    """One simulated study participant.

    Attributes
    ----------
    worker_id:
        Stable identifier, e.g. ``"worker_007"``.
    latent_preferences:
        Real-valued preference per POI (higher = more preferred), on an
        unbounded latent scale before elicitation noise and rounding.
    elicitation_noise:
        Standard deviation of the noise added when the worker converts her
        latent preference into an explicit 1–5 rating.
    response_noise:
        Standard deviation of the noise on Phase-2 satisfaction responses.
    """

    worker_id: str
    latent_preferences: np.ndarray
    elicitation_noise: float = 0.4
    response_noise: float = 0.35

    def elicit_ratings(
        self, scale: RatingScale, rng: np.random.Generator
    ) -> np.ndarray:
        """Phase-1 explicit ratings of every POI on the given scale."""
        noisy = self.latent_preferences + rng.normal(
            0.0, self.elicitation_noise, size=self.latent_preferences.shape
        )
        return np.asarray(scale.round_to_scale(noisy), dtype=float)

    def grouping_response(
        self,
        sample_values: np.ndarray,
        groups,
        scale: RatingScale,
        rng: np.random.Generator,
    ) -> float:
        """Phase-2 satisfaction (1–5) with an entire formed grouping.

        The paper's HIT shows the worker the sample individuals' preference
        table and the groups formed by an (anonymised) method, and asks for
        her satisfaction *with the formed groups*.  The simulated response is
        therefore holistic: for every group the worker checks how well the
        recommended list matches that group's members (their mean rating of
        the recommended items), averages this over the groups, and reports
        the result with response noise, clipped to the rating scale.

        Parameters
        ----------
        sample_values:
            Complete rating array of the sample individuals shown in the HIT.
        groups:
            Iterable of :class:`repro.core.grouping.Group` (or any objects
            exposing ``members`` and ``items``).
        scale:
            Response scale (1–5 in the paper).
        rng:
            Noise source.
        """
        groups = list(groups)
        if not groups:
            raise ValueError("groups must be non-empty")
        per_group = []
        for group in groups:
            items = list(group.items)
            if not items:
                raise ValueError("every group must carry a recommended list")
            member_match = [
                float(np.mean(sample_values[member, items])) for member in group.members
            ]
            per_group.append(float(np.mean(member_match)))
        response = float(np.mean(per_group)) + rng.normal(0.0, self.response_noise)
        return float(scale.clip(response))

    def satisfaction_response(
        self,
        personal_ratings: np.ndarray,
        recommended_items: list[int],
        scale: RatingScale,
        rng: np.random.Generator,
    ) -> float:
        """Phase-2 satisfaction (1–5) with a list recommended to "their" group.

        Parameters
        ----------
        personal_ratings:
            The ratings of the sample individual the worker is asked to
            identify with (the study shows these to the worker).
        recommended_items:
            Item indices of the list recommended to that individual's group.
        scale:
            The satisfaction response scale (1–5 in the paper).
        rng:
            Noise source.
        """
        if not recommended_items:
            raise ValueError("recommended_items must be non-empty")
        match = float(np.mean(personal_ratings[list(recommended_items)]))
        response = match + rng.normal(0.0, self.response_noise)
        return float(scale.clip(response))


def generate_workers(
    n_workers: int,
    n_items: int,
    n_personas: int = 4,
    persona_spread: float = 0.6,
    scale: RatingScale | None = None,
    rng: int | np.random.Generator | None = None,
) -> list[SimulatedWorker]:
    """Create a pool of simulated workers with persona-driven POI tastes.

    Workers are drawn from a small number of personas (e.g. "museums",
    "nightlife", "parks", "landmarks"); ``persona_spread`` controls how far
    individual workers wander from their persona, which in turn controls how
    much similar / dissimilar structure the Phase-1 sample selection can find.
    """
    n_workers = require_positive_int(n_workers, "n_workers")
    n_items = require_positive_int(n_items, "n_items")
    n_personas = require_positive_int(n_personas, "n_personas")
    scale = scale if scale is not None else RatingScale(1.0, 5.0)
    generator = ensure_rng(rng)

    centre = (scale.minimum + scale.maximum) / 2.0
    spread_to_scale = (scale.maximum - scale.minimum) / 2.0
    personas = generator.normal(0.0, 1.0, size=(n_personas, n_items))
    workers: list[SimulatedWorker] = []
    for idx in range(n_workers):
        persona = personas[generator.integers(n_personas)]
        latent = persona + generator.normal(0.0, persona_spread, size=n_items)
        # Map the standardised latent taste onto the rating scale.
        latent = centre + latent * spread_to_scale / 2.0
        workers.append(
            SimulatedWorker(
                worker_id=f"worker_{idx:03d}",
                latent_preferences=latent,
            )
        )
    return workers


def workers_rating_matrix(
    workers: list[SimulatedWorker],
    item_ids: list[str],
    scale: RatingScale | None = None,
    rng: int | np.random.Generator | None = None,
) -> RatingMatrix:
    """Phase-1 output: the complete worker x POI rating matrix."""
    if not workers:
        raise ValueError("workers must be non-empty")
    scale = scale if scale is not None else RatingScale(1.0, 5.0)
    generator = ensure_rng(rng)
    values = np.vstack(
        [worker.elicit_ratings(scale, generator) for worker in workers]
    )
    if values.shape[1] != len(item_ids):
        raise ValueError(
            f"workers rate {values.shape[1]} items but {len(item_ids)} item ids given"
        )
    return RatingMatrix(
        values,
        user_ids=[worker.worker_id for worker in workers],
        item_ids=item_ids,
        scale=scale,
    )
