"""The two-phase user-study protocol (paper §7.3), simulated end-to-end.

Phase 1 — *preference collection and group formation*: a Flickr-style
itinerary log of a city is generated, the 10 most popular POIs are extracted,
50 simulated workers rate them on a 1–5 scale, and three 10-user samples are
built from those ratings: **similar**, **dissimilar** and **random** (using
the paper's aligned top-k similarity).  For each sample and each aggregation
(Min and Sum) the sample is partitioned into ℓ = 3 groups twice — once with
GRD-LM and once with Baseline-LM.

Phase 2 — *group-satisfaction evaluation*: for every (sample, aggregation)
pair a fresh batch of workers inspects the two anonymous groupings
("Method-1" vs "Method-2"), identifies with one individual of the sample, and
reports a 1–5 satisfaction for each method plus which method they prefer.

:func:`run_user_study` returns all raw responses and the per-condition
summaries that Figure 7 plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.baselines.pipeline import baseline_clustering
from repro.core.greedy_lm import grd_lm
from repro.core.grouping import GroupFormationResult
from repro.datasets.flickr_pois import (
    extract_top_pois,
    poi_rating_matrix,
    synthetic_flickr_log,
)
from repro.datasets.samples import (
    select_dissimilar_sample,
    select_random_sample,
    select_similar_sample,
)
from repro.recsys.matrix import RatingMatrix, RatingScale
from repro.userstudy.analysis import (
    SampleStatistics,
    preference_percentages,
    sample_statistics,
    welch_t_test,
)
from repro.userstudy.worker_model import generate_workers, workers_rating_matrix
from repro.utils.rng import derive_seed, ensure_rng

__all__ = ["UserStudyConfig", "ConditionResult", "UserStudyResult", "run_user_study"]


@dataclass(frozen=True)
class UserStudyConfig:
    """Parameters of the simulated study (defaults mirror the paper).

    Attributes
    ----------
    n_phase1_workers:
        Number of workers rating POIs in Phase 1 (paper: 50).
    n_pois:
        Number of POIs extracted from the itinerary log (paper: 10).
    sample_size:
        Number of users per similar/dissimilar/random sample (paper: 10).
    n_groups:
        Group budget ℓ used when forming groups (paper: 3).
    k:
        Length of each group's recommended list shown to workers.
    n_phase2_workers:
        Fresh workers per HIT, i.e. per (sample, aggregation) condition
        (paper: 10).
    aggregations:
        Aggregation functions evaluated (paper: Min and Sum).
    semantics:
        Group recommendation semantics (the paper reports LM only).
    seed:
        Master seed; every stochastic step derives its own child seed.
    backend:
        Formation backend the GRD runs go through (``"reference"`` /
        ``"numpy"``; ``None`` = engine default).  Backends are
        bit-identical, so this cannot change the study's outcomes.
    """

    n_phase1_workers: int = 50
    n_pois: int = 10
    sample_size: int = 10
    n_groups: int = 3
    k: int = 3
    n_phase2_workers: int = 10
    aggregations: tuple[str, ...] = ("min", "sum")
    semantics: str = "lm"
    seed: int = 7
    backend: str | None = None


@dataclass
class ConditionResult:
    """Responses and summaries for one (sample type, aggregation) condition."""

    sample_type: str
    aggregation: str
    grd_result: GroupFormationResult
    baseline_result: GroupFormationResult
    grd_responses: list[float] = field(default_factory=list)
    baseline_responses: list[float] = field(default_factory=list)
    preferences: dict[str, int] = field(default_factory=dict)

    @property
    def grd_statistics(self) -> SampleStatistics:
        """Mean / stderr of worker satisfaction with the GRD grouping."""
        return sample_statistics(self.grd_responses)

    @property
    def baseline_statistics(self) -> SampleStatistics:
        """Mean / stderr of worker satisfaction with the baseline grouping."""
        return sample_statistics(self.baseline_responses)

    @property
    def significance(self) -> tuple[float, float]:
        """Welch t-test (statistic, p-value) between the two response samples."""
        return welch_t_test(self.grd_responses, self.baseline_responses)


@dataclass
class UserStudyResult:
    """Everything the study produced, plus Figure-7-style aggregates."""

    config: UserStudyConfig
    phase1_ratings: RatingMatrix
    conditions: list[ConditionResult]

    def condition(self, sample_type: str, aggregation: str) -> ConditionResult:
        """Look up one condition by sample type and aggregation name."""
        for cond in self.conditions:
            if cond.sample_type == sample_type and cond.aggregation == aggregation:
                return cond
        raise KeyError(f"no condition ({sample_type}, {aggregation}) in this study")

    def preference_summary(self) -> dict[str, dict[str, float]]:
        """Figure 7(a): % of workers preferring GRD vs Baseline per aggregation."""
        summary: dict[str, dict[str, float]] = {}
        for aggregation in self.config.aggregations:
            counts: dict[str, int] = {"GRD-LM": 0, "Baseline-LM": 0}
            for cond in self.conditions:
                if cond.aggregation != aggregation:
                    continue
                for method, votes in cond.preferences.items():
                    counts[method] = counts.get(method, 0) + votes
            summary[aggregation] = preference_percentages(counts)
        return summary

    def satisfaction_table(self) -> list[dict[str, Any]]:
        """Figure 7(b, c): per-condition mean satisfaction with standard errors."""
        rows = []
        for cond in self.conditions:
            grd = cond.grd_statistics
            base = cond.baseline_statistics
            t_stat, p_value = cond.significance
            rows.append(
                {
                    "sample": cond.sample_type,
                    "aggregation": cond.aggregation,
                    "grd_mean": grd.mean,
                    "grd_stderr": grd.stderr,
                    "baseline_mean": base.mean,
                    "baseline_stderr": base.stderr,
                    "t_statistic": t_stat,
                    "p_value": p_value,
                }
            )
        return rows


def _form_condition_groups(
    sample_ratings: RatingMatrix,
    config: UserStudyConfig,
    aggregation: str,
    rng_seed: int,
) -> tuple[GroupFormationResult, GroupFormationResult]:
    """Run GRD-LM and Baseline-LM on one sample for one aggregation."""
    grd = grd_lm(
        sample_ratings,
        max_groups=config.n_groups,
        k=config.k,
        aggregation=aggregation,
        backend=config.backend,
    )
    baseline = baseline_clustering(
        sample_ratings,
        max_groups=config.n_groups,
        k=config.k,
        semantics=config.semantics,
        aggregation=aggregation,
        rng=rng_seed,
    )
    return grd, baseline


def run_user_study(config: UserStudyConfig | None = None) -> UserStudyResult:
    """Run the full simulated study and return raw responses plus summaries.

    The simulation mirrors the paper's setup faithfully: the same sample
    construction, the same blinded two-method comparison, the same response
    scale, and fresh workers per HIT.  What is necessarily synthetic is the
    workers themselves; see ``DESIGN.md`` for why the substituted response
    model preserves the comparison being made.
    """
    config = config or UserStudyConfig()
    master = ensure_rng(config.seed)

    # ---------------------------------------------------------------- #
    # Phase 1: POI extraction, preference collection, sample building. #
    # ---------------------------------------------------------------- #
    log = synthetic_flickr_log(
        n_users=200, n_pois=max(4 * config.n_pois, config.n_pois + 5),
        rng=derive_seed(config.seed, "flickr-log"),
    )
    pois = extract_top_pois(log, n=config.n_pois)
    # The log's POI preference matrix seeds the worker personas indirectly:
    # it fixes which POIs are "landmarks", exactly as the paper's NYC log
    # fixes the 10 POIs workers are asked about.
    _ = poi_rating_matrix(log, pois, rng=derive_seed(config.seed, "log-ratings"))

    workers = generate_workers(
        n_workers=config.n_phase1_workers,
        n_items=len(pois),
        rng=derive_seed(config.seed, "phase1-workers"),
    )
    scale = RatingScale(1.0, 5.0)
    phase1_ratings = workers_rating_matrix(
        workers, pois, scale=scale, rng=derive_seed(config.seed, "phase1-elicit")
    )

    samples = {
        "similar": select_similar_sample(
            phase1_ratings, size=config.sample_size, positions=config.n_pois,
            rng=derive_seed(config.seed, "sample-similar"),
        ),
        "dissimilar": select_dissimilar_sample(
            phase1_ratings, size=config.sample_size, positions=config.n_pois,
            rng=derive_seed(config.seed, "sample-dissimilar"),
        ),
        "random": select_random_sample(
            phase1_ratings, size=config.sample_size,
            rng=derive_seed(config.seed, "sample-random"),
        ),
    }

    # ---------------------------------------------------------------- #
    # Phase 2: blinded satisfaction evaluation by fresh workers.        #
    # ---------------------------------------------------------------- #
    conditions: list[ConditionResult] = []
    for sample_type, member_indices in samples.items():
        sample_ratings = phase1_ratings.subset(user_indices=member_indices)
        for aggregation in config.aggregations:
            grd_result, baseline_result = _form_condition_groups(
                sample_ratings,
                config,
                aggregation,
                derive_seed(config.seed, "baseline", sample_type, aggregation),
            )
            condition = ConditionResult(
                sample_type=sample_type,
                aggregation=aggregation,
                grd_result=grd_result,
                baseline_result=baseline_result,
                preferences={"GRD-LM": 0, "Baseline-LM": 0},
            )

            hit_workers = generate_workers(
                n_workers=config.n_phase2_workers,
                n_items=len(pois),
                rng=derive_seed(config.seed, "phase2", sample_type, aggregation),
            )
            response_rng = ensure_rng(
                derive_seed(config.seed, "responses", sample_type, aggregation)
            )
            values = sample_ratings.values
            for worker in hit_workers:
                # The HIT shows the sample's preference table alongside the
                # groups formed by each (anonymised) method and asks for the
                # worker's satisfaction with the formed groups, so the
                # response evaluates the grouping holistically (see
                # SimulatedWorker.grouping_response).
                responses = {}
                for method, result in (
                    ("GRD-LM", grd_result),
                    ("Baseline-LM", baseline_result),
                ):
                    responses[method] = worker.grouping_response(
                        values, result.groups, scale, response_rng
                    )
                condition.grd_responses.append(responses["GRD-LM"])
                condition.baseline_responses.append(responses["Baseline-LM"])
                if responses["GRD-LM"] > responses["Baseline-LM"]:
                    condition.preferences["GRD-LM"] += 1
                elif responses["Baseline-LM"] > responses["GRD-LM"]:
                    condition.preferences["Baseline-LM"] += 1
                else:
                    tied = "GRD-LM" if response_rng.random() < 0.5 else "Baseline-LM"
                    condition.preferences[tied] += 1
            conditions.append(condition)

    _ = master  # reserved for future protocol extensions
    return UserStudyResult(
        config=config, phase1_ratings=phase1_ratings, conditions=conditions
    )
