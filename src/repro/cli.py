"""Command-line interface: regenerate any table or figure from a terminal.

Installed as the ``repro-experiments`` console script::

    repro-experiments list                  # what can be reproduced
    repro-experiments fig1 --scale bench    # Figure 1(a-c)
    repro-experiments table4                # Table 4
    repro-experiments calibration           # GRD vs Baseline vs OPT
    repro-experiments userstudy             # Figure 7
    repro-experiments all --scale smoke     # everything, tiny sizes

Results are printed as aligned text tables (the same rows/series the paper
plots); ``--json PATH`` additionally dumps the raw numbers for downstream
plotting.

The online serving layer has its own console script (``repro serve``, see
:mod:`repro.service.cli`); ``repro-experiments serve ...`` forwards there
so either spelling works.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence
from typing import Any

from repro.experiments import (
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    format_experiment,
    format_table_rows,
    optimal_calibration,
    table3,
    table4,
)
from repro.core.kernels import (
    DEFAULT_KERNELS,
    KERNEL_MODES,
    set_kernel_threads,
    set_kernels,
)
from repro.execution.executor import EXECUTION_MODES
from repro.experiments.config import (
    BACKENDS,
    DEFAULT_BACKEND,
    DEFAULT_STORE,
    STORES,
    normalize_backend,
    normalize_store,
)

__all__ = ["main", "build_parser"]

_FIGURES = {
    "fig1": figure1,
    "fig2": figure2,
    "fig3": figure3,
    "fig4": figure4,
    "fig5": figure5,
    "fig6": figure6,
}


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduce the tables and figures of 'From Group Recommendations "
            "to Group Formation' (SIGMOD 2015)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_FIGURES) + ["fig7", "table3", "table4", "calibration",
                                     "userstudy", "all", "list"],
        help="which experiment to run ('list' prints the catalogue)",
    )
    parser.add_argument(
        "--scale",
        default="bench",
        choices=["paper", "bench", "smoke"],
        help="experiment preset (default: bench)",
    )
    parser.add_argument("--seed", type=int, default=0, help="master random seed")
    parser.add_argument(
        "--backend",
        default=DEFAULT_BACKEND,
        choices=list(BACKENDS),
        help=(
            "formation engine backend for the GRD algorithms; both produce "
            f"bit-identical results (default: {DEFAULT_BACKEND})"
        ),
    )
    parser.add_argument(
        "--store",
        default=DEFAULT_STORE,
        choices=list(STORES),
        help=(
            "rating storage the pipeline runs on: the historical dense ndarray "
            "or the CSR sparse store; results are bit-identical "
            f"(default: {DEFAULT_STORE})"
        ),
    )
    parser.add_argument(
        "--kernels",
        default=DEFAULT_KERNELS,
        choices=list(KERNEL_MODES),
        help=(
            "ranking/bucketing kernel generation for the hot path: the "
            "historical argmax-peel + lexsort kernels (classic), the blocked "
            "partition-select + fused-fingerprint overhaul (fast), or the "
            "compiled thread-parallel generation (parallel; falls back to "
            "fast with a warning when no C compiler is available); results "
            f"are bit-identical (default: {DEFAULT_KERNELS})"
        ),
    )
    parser.add_argument(
        "--kernel-threads",
        type=int,
        default=None,
        dest="kernel_threads",
        metavar="T",
        help=(
            "thread count for the compiled parallel kernels (default: the "
            "REPRO_KERNEL_THREADS environment variable, else the CPU count); "
            "thread count never changes results, only wall-clock time"
        ),
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help=(
            "run the GRD algorithms through the sharded formation path with N "
            "contiguous user shards (default: unsharded)"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="W",
        help="parallelism degree for concurrent shard summarisation (with --shards)",
    )
    parser.add_argument(
        "--execution",
        default=None,
        choices=list(EXECUTION_MODES),
        help=(
            "execution strategy for the sharded fan-out (needs --shards >= 2): "
            "serial, a thread pool, or a shared-memory process pool; results "
            "are identical across strategies (default: threads when "
            "--workers > 1, else serial)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        dest="cache_dir",
        metavar="DIR",
        help=(
            "artifact-cache directory: per-instance top-k indexes (and shard "
            "summaries on the sharded path) are persisted by content "
            "fingerprint, so repeat runs skip ranking entirely"
        ),
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also dump the raw results as JSON to this path",
    )
    return parser


def _run_experiment(
    name: str,
    scale: str,
    seed: int,
    backend: str | None = None,
    store: str | None = None,
    shards: int | None = None,
    workers: int | None = None,
    execution: str | None = None,
    cache_dir: str | None = None,
) -> tuple[str, list[Any]]:
    """Run one experiment and return (rendered text, raw result objects)."""
    if name in _FIGURES:
        results = _FIGURES[name](
            scale=scale,
            seed=seed,
            backend=backend,
            store=store,
            shards=shards,
            workers=workers,
            execution=execution,
            cache_dir=cache_dir,
        )
        text = "\n\n".join(format_experiment(result) for result in results)
        return text, [result.as_dict() for result in results]
    non_default = store not in (None, "dense") or shards is not None
    if name in {"fig7", "userstudy"}:
        if non_default:
            print(f"note: {name} runs the user-study protocol; "
                  "--store/--shards do not apply and are ignored")
        results = figure7(seed=seed or 7, backend=backend)
        text = "\n\n".join(format_experiment(result) for result in results)
        return text, [result.as_dict() for result in results]
    if name == "calibration":
        if shards is not None:
            print("note: calibration instances are exact-solver sized; "
                  "--shards does not apply and is ignored")
        results = optimal_calibration(seed=seed, backend=backend, store=store)
        text = "\n\n".join(format_experiment(result) for result in results)
        return text, [result.as_dict() for result in results]
    if name == "table3":
        if non_default:
            print("note: table3 only reports dataset statistics; "
                  "--store/--shards do not apply and are ignored")
        rows = table3(seed=seed)
        return format_table_rows(rows), rows
    if name == "table4":
        if non_default:
            print("note: table4 runs quality-sized instances dense; "
                  "--store/--shards do not apply and are ignored")
        rows = table4(scale=scale, seed=seed, backend=backend)
        return format_table_rows(rows), rows
    raise ValueError(f"unknown experiment {name!r}")


def _catalogue() -> str:
    lines = [
        "Available experiments:",
        "  fig1         Figure 1(a-c): objective vs users/items/groups (LM-Max)",
        "  fig2         Figure 2(a-b): objective vs top-k (LM-Min, LM-Sum)",
        "  fig3         Figure 3(a-d): avg satisfaction on top-k list (AV-Min)",
        "  fig4         Figure 4(a-c): runtime vs users/items/groups (LM-Min)",
        "  fig5         Figure 5(a-d): runtime vs top-k (LM/AV x Min/Sum)",
        "  fig6         Figure 6(a-c): runtime vs users/items/groups (AV-Min)",
        "  fig7         Figure 7(a-c): simulated user study",
        "  table3       Table 3: dataset statistics",
        "  table4       Table 4: distribution of group sizes",
        "  calibration  GRD vs Baseline vs OPT on exactly solvable instances",
        "  userstudy    alias of fig7",
        "  all          run every experiment at the selected scale",
        "",
        "Online serving (see docs/api.md):",
        "  serve        run the formation service (alias of `repro serve`)",
    ]
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of the ``repro-experiments`` console script.

    Parameters
    ----------
    argv:
        Argument vector (default: ``sys.argv[1:]``).

    Returns
    -------
    int
        Process exit status (non-zero on failure).
    """
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv[:1] == ["serve"]:
        # The serving layer owns its own flags; forward verbatim.
        from repro.service.cli import main as serve_main

        return serve_main(argv)
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.experiment == "list":
        print(_catalogue())
        return 0

    names = (
        sorted(_FIGURES) + ["fig7", "table3", "table4", "calibration"]
        if args.experiment == "all"
        else [args.experiment]
    )
    backend = normalize_backend(args.backend)
    store = normalize_store(args.store)
    set_kernels(args.kernels)
    if args.kernel_threads is not None and args.kernel_threads < 1:
        parser.error("--kernel-threads must be a positive integer")
    set_kernel_threads(args.kernel_threads)
    if args.shards is not None and args.shards < 1:
        parser.error("--shards must be a positive integer")
    if args.execution not in (None, "serial") and (
        args.shards is None or args.shards < 2
    ):
        parser.error(
            f"--execution {args.execution} parallelises the sharded fan-out; "
            f"pass --shards N (N >= 2) to use it"
        )
    collected: dict[str, Any] = {}
    for name in names:
        text, raw = _run_experiment(
            name,
            args.scale,
            args.seed,
            backend,
            store=store,
            shards=args.shards,
            workers=args.workers,
            execution=args.execution,
            cache_dir=args.cache_dir,
        )
        print(f"\n===== {name} =====")
        print(text)
        collected[name] = raw

    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(collected, handle, indent=2, default=str)
        print(f"\nraw results written to {args.json}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
