"""Evaluation utilities for the rating-prediction substrate.

The paper's Yahoo! Music snapshot "has been randomly partitioned so as to
correspond to 10 equally sized sets of users, in order to enable
cross-validation"; this module supplies the matching machinery: hold-out
splits on observed ratings, user-partition cross-validation folds, and the
usual pointwise error metrics (RMSE / MAE) for calibrating the predictors in
:mod:`repro.recsys.knn` and :mod:`repro.recsys.mf`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import RatingDataError
from repro.recsys.matrix import RatingMatrix
from repro.utils.rng import ensure_rng
from repro.utils.validation import require_positive_int

__all__ = [
    "rmse",
    "mae",
    "train_test_split",
    "cross_validation_folds",
    "evaluate_predictor",
    "EvaluationReport",
]


def rmse(predicted: np.ndarray, actual: np.ndarray) -> float:
    """Root-mean-squared error between two equal-length vectors."""
    predicted = np.asarray(predicted, dtype=float)
    actual = np.asarray(actual, dtype=float)
    if predicted.shape != actual.shape:
        raise ValueError(
            f"shape mismatch: predicted {predicted.shape} vs actual {actual.shape}"
        )
    if predicted.size == 0:
        raise ValueError("cannot compute RMSE of empty arrays")
    return float(np.sqrt(np.mean((predicted - actual) ** 2)))


def mae(predicted: np.ndarray, actual: np.ndarray) -> float:
    """Mean absolute error between two equal-length vectors."""
    predicted = np.asarray(predicted, dtype=float)
    actual = np.asarray(actual, dtype=float)
    if predicted.shape != actual.shape:
        raise ValueError(
            f"shape mismatch: predicted {predicted.shape} vs actual {actual.shape}"
        )
    if predicted.size == 0:
        raise ValueError("cannot compute MAE of empty arrays")
    return float(np.mean(np.abs(predicted - actual)))


def train_test_split(
    ratings: RatingMatrix,
    test_fraction: float = 0.2,
    rng: int | np.random.Generator | None = None,
) -> tuple[RatingMatrix, list[tuple[int, int, float]]]:
    """Hide a random fraction of observed ratings as a test set.

    Returns the training matrix (test entries replaced with ``NaN``) and the
    list of hidden positional triples ``(user, item, rating)``.
    """
    return ratings.mask_random(test_fraction, rng=rng)


def cross_validation_folds(
    ratings: RatingMatrix,
    n_folds: int = 10,
    rng: int | np.random.Generator | None = None,
) -> list[np.ndarray]:
    """Partition users into ``n_folds`` equally sized folds.

    Mirrors the Yahoo! Music pre-processing: the user population is split
    into ``n_folds`` disjoint user sets.  Returns a list of positional user
    index arrays, one per fold, covering every user exactly once.
    """
    n_folds = require_positive_int(n_folds, "n_folds")
    if n_folds > ratings.n_users:
        raise RatingDataError(
            f"cannot create {n_folds} folds from {ratings.n_users} users"
        )
    generator = ensure_rng(rng)
    order = generator.permutation(ratings.n_users)
    return [np.sort(fold) for fold in np.array_split(order, n_folds)]


@dataclass(frozen=True)
class EvaluationReport:
    """Pointwise prediction quality of a rating predictor on held-out ratings.

    Attributes
    ----------
    rmse:
        Root-mean-squared error over the hidden ratings.
    mae:
        Mean absolute error over the hidden ratings.
    n_test:
        Number of held-out ratings the errors were computed on.
    """

    rmse: float
    mae: float
    n_test: int


def evaluate_predictor(
    predictor,
    ratings: RatingMatrix,
    test_fraction: float = 0.2,
    rng: int | np.random.Generator | None = None,
) -> EvaluationReport:
    """Hold-out evaluation of a rating predictor.

    A random ``test_fraction`` of observed ratings is hidden, the predictor is
    fitted on the remainder, and RMSE / MAE are computed on the hidden
    entries.

    Parameters
    ----------
    predictor:
        Unfitted predictor implementing :class:`~repro.recsys.predict.RatingPredictor`.
    ratings:
        The full observed rating matrix.
    test_fraction:
        Fraction of observed ratings to hide.
    rng:
        Seed or generator controlling which ratings are hidden.
    """
    train, hidden = train_test_split(ratings, test_fraction=test_fraction, rng=rng)
    predictor.fit(train)
    actual = np.array([rating for _, _, rating in hidden])
    predicted = np.array([predictor.predict(user, item) for user, item, _ in hidden])
    return EvaluationReport(
        rmse=rmse(predicted, actual), mae=mae(predicted, actual), n_test=len(hidden)
    )
