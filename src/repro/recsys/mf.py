"""Regularised matrix factorisation trained with stochastic gradient descent.

The biased matrix-factorisation model (Koren-style) predicts

``r_hat(u, i) = mu + b_u + b_i + p_u . q_i``

and is trained by SGD on the observed entries with L2 regularisation.  It is
the second "standard" rating predictor offered by the substrate (alongside
the kNN predictors in :mod:`repro.recsys.knn`) for completing sparse rating
matrices before group formation.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import RatingDataError
from repro.recsys.matrix import RatingMatrix
from repro.utils.rng import ensure_rng
from repro.utils.validation import require_positive_int

__all__ = ["MatrixFactorizationPredictor"]


class MatrixFactorizationPredictor:
    """Biased matrix factorisation with SGD training.

    Parameters
    ----------
    n_factors:
        Latent dimensionality of the user and item factor vectors.
    n_epochs:
        Number of passes over the observed ratings.
    learning_rate:
        SGD step size.
    regularization:
        L2 penalty applied to biases and factors.
    rng:
        Seed or generator controlling factor initialisation and the
        per-epoch shuffling of training triples.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.recsys import RatingMatrix
    >>> values = np.array([[5, 4, np.nan], [4, np.nan, 2.0], [1, 2, 5.0]])
    >>> model = MatrixFactorizationPredictor(n_factors=2, n_epochs=30, rng=0)
    >>> _ = model.fit(RatingMatrix(values))
    >>> 1.0 <= model.predict(0, 2) <= 5.0
    True
    """

    def __init__(
        self,
        n_factors: int = 16,
        n_epochs: int = 30,
        learning_rate: float = 0.01,
        regularization: float = 0.05,
        rng: int | np.random.Generator | None = 0,
    ) -> None:
        self.n_factors = require_positive_int(n_factors, "n_factors")
        self.n_epochs = require_positive_int(n_epochs, "n_epochs")
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        if regularization < 0:
            raise ValueError(
                f"regularization must be non-negative, got {regularization}"
            )
        self.learning_rate = float(learning_rate)
        self.regularization = float(regularization)
        self._rng = ensure_rng(rng)
        self._ratings: RatingMatrix | None = None
        self.training_loss_: list[float] = []

    def fit(self, ratings: RatingMatrix) -> "MatrixFactorizationPredictor":
        """Train factors and biases on the observed entries of ``ratings``."""
        self._ratings = ratings
        n_users, n_items = ratings.shape
        scale = 1.0 / np.sqrt(self.n_factors)
        self._mu = ratings.global_mean()
        self._bu = np.zeros(n_users)
        self._bi = np.zeros(n_items)
        self._p = self._rng.normal(0.0, scale, size=(n_users, self.n_factors))
        self._q = self._rng.normal(0.0, scale, size=(n_items, self.n_factors))

        rows, cols = np.nonzero(ratings.known_mask)
        targets = ratings.values[rows, cols]
        n_obs = rows.size
        if n_obs == 0:
            raise RatingDataError("cannot fit matrix factorisation on zero ratings")

        lr, reg = self.learning_rate, self.regularization
        self.training_loss_ = []
        order = np.arange(n_obs)
        for _ in range(self.n_epochs):
            self._rng.shuffle(order)
            squared_error = 0.0
            for idx in order:
                u, i, r = int(rows[idx]), int(cols[idx]), float(targets[idx])
                pred = (
                    self._mu
                    + self._bu[u]
                    + self._bi[i]
                    + float(self._p[u] @ self._q[i])
                )
                err = r - pred
                squared_error += err * err
                self._bu[u] += lr * (err - reg * self._bu[u])
                self._bi[i] += lr * (err - reg * self._bi[i])
                pu = self._p[u].copy()
                self._p[u] += lr * (err * self._q[i] - reg * pu)
                self._q[i] += lr * (err * pu - reg * self._q[i])
            self.training_loss_.append(squared_error / n_obs)
        return self

    def _require_fitted(self) -> RatingMatrix:
        if self._ratings is None:
            raise RatingDataError(
                "MatrixFactorizationPredictor must be fitted before predicting"
            )
        return self._ratings

    def predict(self, user: int, item: int) -> float:
        """Predict the rating of ``user`` for ``item`` (clipped to scale)."""
        ratings = self._require_fitted()
        estimate = (
            self._mu
            + self._bu[user]
            + self._bi[item]
            + float(self._p[user] @ self._q[item])
        )
        return float(ratings.scale.clip(estimate))

    def predict_all(self) -> np.ndarray:
        """Dense predictions for every ``(user, item)`` pair (observed kept)."""
        ratings = self._require_fitted()
        estimates = (
            self._mu
            + self._bu[:, None]
            + self._bi[None, :]
            + self._p @ self._q.T
        )
        estimates = np.where(ratings.known_mask, ratings.values, estimates)
        return np.asarray(ratings.scale.clip(estimates))
