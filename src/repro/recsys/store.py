"""Rating storage backends: the :class:`RatingStore` protocol and its
dense / CSR-sparse implementations.

The greedy group-formation algorithms of the paper only ever consume rating
data through a handful of access patterns — dense *row blocks* for building
top-k tables, dense *row gathers* for scoring a formed group on its
recommended items, and streaming *block reductions* for the left-over
group's semantics scores.  :class:`RatingStore` captures exactly those
patterns, so every layer above (preferences, engine, baselines, exact
solvers, experiments) can run off either storage:

``DenseStore``
    The historical representation: one complete ``float64`` ndarray.  Zero
    conversion cost; ``block``/``rows`` return views/fancy-indexed copies of
    the underlying array, so results through a ``DenseStore`` are bit-
    identical to passing the raw array.
``SparseStore``
    A ``scipy.sparse`` CSR matrix of the *explicit* ratings plus a
    ``fill_value`` giving the rating of every unobserved cell.  Real
    explicit-feedback data (MovieLens, Yahoo! Music) is >95% sparse, and a
    million-user instance only ever needs to be densified a block of rows at
    a time — which is what keeps the sharded formation path inside a few GB
    of RSS where the dense matrix would need hundreds.

Densification of a ``SparseStore`` block writes the stored ratings over a
``fill_value`` canvas (no arithmetic on the stored values), so a
``SparseStore`` built from a complete matrix reproduces that matrix bit for
bit — the dense↔sparse parity suite in ``tests/core/test_store_parity.py``
relies on this.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from typing import Hashable, Protocol, runtime_checkable

import numpy as np
from scipy import sparse as sp

from repro.core.errors import RatingDataError
from repro.recsys.matrix import RatingMatrix, RatingScale

__all__ = [
    "RatingStore",
    "MutableRatingStore",
    "DenseStore",
    "SparseStore",
    "as_store",
    "DEFAULT_BLOCK_USERS",
]

#: Default number of users densified at a time by block iteration.  Sized so
#: a block of a 10k-item catalogue costs ~160 MB — small enough to keep a
#: million-user run inside the acceptance memory budget, large enough that
#: per-block numpy dispatch overhead is negligible.
DEFAULT_BLOCK_USERS = 2048


@runtime_checkable
class RatingStore(Protocol):
    """Access patterns the formation stack needs from rating storage.

    All methods return dense ``float64`` arrays; implementations decide how
    the data lives at rest.  Ratings must be complete (every user/item cell
    has a value — explicit or via a documented fill) and finite.
    """

    @property
    def n_users(self) -> int:
        """Number of user rows."""
        ...

    @property
    def n_items(self) -> int:
        """Catalogue size (number of item columns)."""
        ...

    @property
    def shape(self) -> tuple[int, int]:
        """``(n_users, n_items)``."""
        ...

    @property
    def scale(self) -> RatingScale:
        """The bounded rating scale every stored value lies on."""
        ...

    @property
    def density(self) -> float:
        """Fraction of cells stored explicitly (1.0 for dense storage)."""
        ...

    @property
    def nbytes(self) -> int:
        """Resident size of the stored representation in bytes."""
        ...

    def block(self, start: int, stop: int) -> np.ndarray:
        """Dense ``(stop - start, n_items)`` slice of contiguous user rows."""
        ...

    def rows(self, users: Sequence[int] | np.ndarray) -> np.ndarray:
        """Dense rows for an arbitrary set of users, in the given order."""
        ...

    def gather(
        self, users: Sequence[int] | np.ndarray, items: Sequence[int] | np.ndarray
    ) -> np.ndarray:
        """Dense ``(len(users), len(items))`` sub-matrix."""
        ...

    def iter_blocks(
        self, block_users: int = DEFAULT_BLOCK_USERS
    ) -> Iterator[tuple[int, int, np.ndarray]]:
        """Yield ``(start, stop, dense_block)`` in ``block_users``-row steps."""
        ...

    def to_dense(self) -> np.ndarray:
        """The full dense ``(n_users, n_items)`` array (use with care)."""
        ...


@runtime_checkable
class MutableRatingStore(RatingStore, Protocol):
    """A :class:`RatingStore` that additionally accepts in-place updates.

    This is the contract the online serving layer
    (:mod:`repro.service`) builds on: cells can be upserted or deleted and
    user rows appended or cleared, while every read-side method keeps the
    :class:`RatingStore` guarantees (complete, finite, on-scale ratings).
    Deleting a cell reverts it to the store's :attr:`fill_value`.
    """

    @property
    def fill_value(self) -> float:
        """Rating a deleted (or never-rated) cell reads back as."""
        ...

    def upsert(
        self,
        users: Sequence[int] | np.ndarray,
        items: Sequence[int] | np.ndarray,
        values: Sequence[float] | np.ndarray,
    ) -> None:
        """Set ``store[users[j], items[j]] = values[j]`` for every ``j``."""
        ...

    def delete(
        self,
        users: Sequence[int] | np.ndarray,
        items: Sequence[int] | np.ndarray,
    ) -> None:
        """Revert the cells ``(users[j], items[j])`` to :attr:`fill_value`."""
        ...

    def clear_rows(self, users: Sequence[int] | np.ndarray) -> None:
        """Revert every cell of the ``users`` rows to :attr:`fill_value`."""
        ...

    def append_users(self, rows: np.ndarray) -> None:
        """Append ``rows`` (dense ``(m, n_items)``) as new trailing users."""
        ...


def _validate_update_coords(
    users: Sequence[int] | np.ndarray,
    items: Sequence[int] | np.ndarray,
    shape: tuple[int, int],
    values: Sequence[float] | np.ndarray | None,
    scale: RatingScale,
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Validate coordinate updates shared by every mutable store.

    Parameters
    ----------
    users, items:
        Parallel coordinate arrays of the cells to touch.
    shape:
        ``(n_users, n_items)`` of the store being mutated.
    values:
        New ratings (``None`` for deletions).
    scale:
        Rating scale the new values must lie on.

    Returns
    -------
    tuple
        ``(users, items, values)`` as validated ``int64`` / ``float64``
        arrays (``values`` is ``None`` for deletions).  Duplicate
        coordinates are collapsed **last-wins**, so a batch behaves like
        its updates applied in order regardless of the store backend.

    Raises
    ------
    RatingDataError
        On ragged inputs, out-of-range coordinates, or non-finite /
        off-scale values.
    """
    users = np.asarray(users, dtype=np.int64).ravel()
    items = np.asarray(items, dtype=np.int64).ravel()
    if users.shape != items.shape:
        raise RatingDataError(
            f"update coordinates must be parallel arrays, got {users.size} users "
            f"and {items.size} items"
        )
    if users.size and (users.min() < 0 or users.max() >= shape[0]):
        raise RatingDataError("update user index out of range")
    if items.size and (items.min() < 0 or items.max() >= shape[1]):
        raise RatingDataError("update item index out of range")
    if values is not None:
        values = np.asarray(values, dtype=np.float64).ravel()
        if values.shape != users.shape:
            raise RatingDataError(
                f"updates need one value per coordinate, got {values.size} values "
                f"for {users.size} cells"
            )
        if values.size and not np.isfinite(values).all():
            raise RatingDataError("updates must be finite ratings")
        if values.size and not scale.contains(values):
            raise RatingDataError(
                f"updates contain values outside the rating scale "
                f"[{scale.minimum}, {scale.maximum}]"
            )
    if users.size > 1:
        # Collapse duplicate coordinates last-wins: np.unique on the
        # reversed flat coordinates returns the *last* occurrence of each.
        flat = users * np.int64(shape[1]) + items
        _, rev_idx = np.unique(flat[::-1], return_index=True)
        keep = users.size - 1 - rev_idx
        if keep.size != users.size:
            users, items = users[keep], items[keep]
            if values is not None:
                values = values[keep]
    return users, items, values


def _validate_new_rows(rows: np.ndarray, n_items: int, scale: RatingScale) -> np.ndarray:
    """Validate dense rows being appended to a mutable store.

    Parameters
    ----------
    rows:
        ``(m, n_items)`` dense ratings of the new users.
    n_items:
        Catalogue width of the store being appended to.
    scale:
        Rating scale the new rows must lie on.

    Returns
    -------
    numpy.ndarray
        The rows as a validated 2-D ``float64`` array.

    Raises
    ------
    RatingDataError
        When the rows are ragged, off-catalogue, non-finite or off-scale.
    """
    rows = np.asarray(rows, dtype=np.float64)
    if rows.ndim == 1:
        rows = rows[None, :]
    if rows.ndim != 2 or rows.shape[1] != n_items:
        raise RatingDataError(
            f"appended users need shape (m, {n_items}), got {rows.shape}"
        )
    if rows.size and not np.isfinite(rows).all():
        raise RatingDataError("appended user rows must be finite")
    if rows.size and not scale.contains(rows):
        raise RatingDataError(
            f"appended user rows contain values outside the rating scale "
            f"[{scale.minimum}, {scale.maximum}]"
        )
    return rows


def _validate_dense(values: np.ndarray) -> np.ndarray:
    values = np.asarray(values, dtype=float)
    if values.ndim != 2:
        raise RatingDataError(
            f"rating store expects a 2-D user x item array, got shape {values.shape}"
        )
    if values.shape[0] == 0 or values.shape[1] == 0:
        raise RatingDataError(
            f"rating store needs at least one user and one item, got {values.shape}"
        )
    if not np.isfinite(values).all():
        raise RatingDataError(
            "rating store requires complete, finite ratings; fill missing entries "
            "(repro.recsys.complete_matrix) before building a store"
        )
    return values


class DenseStore:
    """A :class:`RatingStore` over one complete in-memory ``float64`` array.

    Examples
    --------
    >>> import numpy as np
    >>> store = DenseStore(np.array([[5.0, 1.0], [2.0, 4.0]]))
    >>> store.block(0, 1)
    array([[5., 1.]])
    """

    def __init__(
        self,
        values: np.ndarray,
        scale: RatingScale | None = None,
        copy: bool = False,
        validate: bool = True,
    ) -> None:
        values = _validate_dense(values) if validate else np.asarray(values, dtype=float)
        self._values = np.array(values, copy=True) if copy else values
        self._scale = scale if scale is not None else RatingScale()

    @classmethod
    def from_matrix(cls, matrix: RatingMatrix) -> "DenseStore":
        """Wrap a complete :class:`~repro.recsys.matrix.RatingMatrix`."""
        return cls(matrix.values, scale=matrix.scale)

    @property
    def values(self) -> np.ndarray:
        """The wrapped dense array (not a copy)."""
        return self._values

    @property
    def n_users(self) -> int:
        """Number of user rows."""
        return self._values.shape[0]

    @property
    def n_items(self) -> int:
        """Catalogue size (number of item columns)."""
        return self._values.shape[1]

    @property
    def shape(self) -> tuple[int, int]:
        """``(n_users, n_items)``."""
        return self._values.shape

    @property
    def scale(self) -> RatingScale:
        """The bounded rating scale every stored value lies on."""
        return self._scale

    @property
    def density(self) -> float:
        """Fraction of cells stored explicitly — always ``1.0`` here."""
        return 1.0

    @property
    def nbytes(self) -> int:
        """Resident size of the wrapped array in bytes."""
        return int(self._values.nbytes)

    def block(self, start: int, stop: int) -> np.ndarray:
        """View of the contiguous user rows ``start:stop`` (no copy)."""
        return self._values[start:stop]

    def rows(self, users: Sequence[int] | np.ndarray) -> np.ndarray:
        """Dense rows for ``users``, in the given order (fancy-index copy)."""
        return self._values[np.asarray(users, dtype=np.int64)]

    def gather(
        self, users: Sequence[int] | np.ndarray, items: Sequence[int] | np.ndarray
    ) -> np.ndarray:
        """Dense ``(len(users), len(items))`` sub-matrix of the given cells."""
        return self._values[
            np.ix_(np.asarray(users, dtype=np.int64), np.asarray(items, dtype=np.int64))
        ]

    def iter_blocks(
        self, block_users: int = DEFAULT_BLOCK_USERS
    ) -> Iterator[tuple[int, int, np.ndarray]]:
        """Yield ``(start, stop, dense_view)`` over ``block_users``-row blocks."""
        for start in range(0, self.n_users, block_users):
            stop = min(start + block_users, self.n_users)
            yield start, stop, self._values[start:stop]

    def to_dense(self) -> np.ndarray:
        """The wrapped array itself (no copy)."""
        return self._values

    # ------------------------------------------------------------------ #
    # MutableRatingStore interface
    # ------------------------------------------------------------------ #

    @property
    def fill_value(self) -> float:
        """Rating a deleted cell reverts to: the scale minimum.

        A dense store has no notion of "unobserved", so deletions adopt the
        same conservative completion the sparse store uses by default.
        """
        return float(self._scale.minimum)

    def upsert(
        self,
        users: Sequence[int] | np.ndarray,
        items: Sequence[int] | np.ndarray,
        values: Sequence[float] | np.ndarray,
    ) -> None:
        """Write ratings into individual cells, in place.

        Parameters
        ----------
        users, items:
            Parallel coordinate arrays of the cells to write.
        values:
            New ratings; must be finite and on the store's scale.

        Raises
        ------
        RatingDataError
            On out-of-range coordinates or off-scale / non-finite values.
        """
        users, items, values = _validate_update_coords(
            users, items, self.shape, values, self._scale
        )
        self._values[users, items] = values

    def delete(
        self,
        users: Sequence[int] | np.ndarray,
        items: Sequence[int] | np.ndarray,
    ) -> None:
        """Revert individual cells to :attr:`fill_value`, in place.

        Parameters
        ----------
        users, items:
            Parallel coordinate arrays of the cells to delete.

        Raises
        ------
        RatingDataError
            On out-of-range coordinates.
        """
        users, items, _ = _validate_update_coords(
            users, items, self.shape, None, self._scale
        )
        self._values[users, items] = self.fill_value

    def clear_rows(self, users: Sequence[int] | np.ndarray) -> None:
        """Revert whole user rows to :attr:`fill_value` (user "removal").

        Parameters
        ----------
        users:
            User indices whose every rating is deleted.  The rows stay in
            the store (indices are positional and must remain stable); the
            serving layer additionally tombstones the users.
        """
        users = np.asarray(users, dtype=np.int64).ravel()
        if users.size and (users.min() < 0 or users.max() >= self.n_users):
            raise RatingDataError("update user index out of range")
        self._values[users, :] = self.fill_value

    def append_users(self, rows: np.ndarray) -> None:
        """Append new trailing user rows.

        Parameters
        ----------
        rows:
            Dense ``(m, n_items)`` ratings of the new users; must be
            complete, finite and on the store's scale.

        Notes
        -----
        Appending reallocates the backing array (``O(n_users)``), so the
        serving layer batches user additions.
        """
        rows = _validate_new_rows(rows, self.n_items, self._scale)
        self._values = np.vstack([self._values, rows])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DenseStore(n_users={self.n_users}, n_items={self.n_items})"


class SparseStore:
    """A :class:`RatingStore` over a CSR matrix of explicit ratings.

    Parameters
    ----------
    explicit:
        ``scipy.sparse`` matrix (any format; converted to CSR) holding the
        explicitly observed ratings.  Stored values may legitimately equal
        ``fill_value`` — densification overwrites the fill canvas with the
        stored values, it does not rely on "nonzero means rated".
    fill_value:
        Rating assumed for every unobserved cell (default: the scale
        minimum, the conservative completion for bounded explicit-feedback
        scales).  Must lie on the scale.
    scale:
        Rating scale (default 1–5).
    user_ids, item_ids:
        Optional external labels, carried for presentation only.
    """

    def __init__(
        self,
        explicit: sp.spmatrix | sp.sparray,
        fill_value: float | None = None,
        scale: RatingScale | None = None,
        user_ids: Sequence[Hashable] | None = None,
        item_ids: Sequence[Hashable] | None = None,
    ) -> None:
        if isinstance(explicit, sp.csr_matrix) and explicit.dtype == np.float64:
            csr = explicit  # adopt without copying (matters at 10^8 ratings)
        else:
            csr = sp.csr_matrix(explicit, dtype=np.float64)
        if csr.shape[0] == 0 or csr.shape[1] == 0:
            raise RatingDataError(
                f"rating store needs at least one user and one item, got {csr.shape}"
            )
        csr.sort_indices()
        self._csr = csr
        self._scale = scale if scale is not None else RatingScale()
        self.fill_value = (
            float(self._scale.minimum) if fill_value is None else float(fill_value)
        )
        if not self._scale.contains(self.fill_value):
            raise RatingDataError(
                f"fill_value {self.fill_value} lies outside the rating scale "
                f"[{self._scale.minimum}, {self._scale.maximum}]"
            )
        if csr.nnz and not np.isfinite(csr.data).all():
            raise RatingDataError("sparse rating store contains non-finite ratings")
        if csr.nnz and not self._scale.contains(csr.data):
            raise RatingDataError(
                "sparse rating store contains values outside the declared scale "
                f"[{self._scale.minimum}, {self._scale.maximum}]"
            )
        self.user_ids = tuple(user_ids) if user_ids is not None else None
        self.item_ids = tuple(item_ids) if item_ids is not None else None

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_matrix(
        cls, matrix: RatingMatrix, fill_value: float | None = None
    ) -> "SparseStore":
        """Build from a :class:`RatingMatrix`.

        Missing entries of ``matrix`` read back as ``fill_value`` (default:
        the scale minimum).  A *complete* matrix round-trips bit for bit:
        every cell is stored explicitly, so the fill value never shows
        through.
        """
        mask = matrix.known_mask
        rows, cols = np.nonzero(mask)
        data = matrix.values[rows, cols]
        explicit = sp.csr_matrix(
            (data, (rows, cols)), shape=matrix.shape, dtype=np.float64
        )
        return cls(
            explicit,
            fill_value=fill_value,
            scale=matrix.scale,
            user_ids=matrix.user_ids,
            item_ids=matrix.item_ids,
        )

    @classmethod
    def from_triples(
        cls,
        triples: Iterable[tuple[Hashable, Hashable, float]],
        n_users: int | None = None,
        n_items: int | None = None,
        fill_value: float | None = None,
        scale: RatingScale | None = None,
        chunk_size: int = 1 << 20,
    ) -> "SparseStore":
        """Build a store from a (possibly huge) stream of rating triples.

        The stream is consumed in ``chunk_size`` pieces, so only the
        coordinate arrays — never a dense matrix — are ever resident, and
        each chunk is converted **wholesale** with ``np.fromiter`` column
        extractions instead of appending triple by triple (the historical
        per-triple loop; ~4x slower on the conversion stage of a 2M-triple
        stream).  User and item labels are mapped to positional indices in
        first-seen order (deterministic for a deterministic stream); pass
        integer ``n_users`` / ``n_items`` with integer-index triples to
        skip label mapping.

        Unobserved cells read back as ``fill_value`` (default: the minimum
        of ``scale``, itself defaulting to 1-5 stars).  Duplicate
        ``(user, item)`` pairs with conflicting ratings raise
        :class:`~repro.core.errors.RatingDataError`; exact duplicates are
        tolerated (the same contract as ``RatingMatrix.from_triples``).
        """
        from itertools import islice

        direct = n_users is not None and n_items is not None
        user_pos: dict[Hashable, int] = {}
        item_pos: dict[Hashable, int] = {}
        row_chunks: list[np.ndarray] = []
        col_chunks: list[np.ndarray] = []
        val_chunks: list[np.ndarray] = []

        iterator = iter(triples)
        while True:
            chunk = list(islice(iterator, chunk_size))
            if not chunk:
                break
            count = len(chunk)
            try:
                if direct:
                    row_chunks.append(np.fromiter(
                        (t[0] for t in chunk), dtype=np.int64, count=count
                    ))
                    col_chunks.append(np.fromiter(
                        (t[1] for t in chunk), dtype=np.int64, count=count
                    ))
                else:
                    # fromiter consumes the dict lookups at C speed;
                    # setdefault assigns positions in first-seen order, as
                    # documented.
                    row_chunks.append(np.fromiter(
                        (user_pos.setdefault(t[0], len(user_pos)) for t in chunk),
                        dtype=np.int64, count=count,
                    ))
                    col_chunks.append(np.fromiter(
                        (item_pos.setdefault(t[1], len(item_pos)) for t in chunk),
                        dtype=np.int64, count=count,
                    ))
                val_chunks.append(np.fromiter(
                    (t[2] for t in chunk), dtype=np.float64, count=count,
                ))
            except (TypeError, IndexError) as exc:
                raise RatingDataError(
                    "triples must be (user, item, rating) sequences"
                ) from exc
        if not row_chunks:
            raise RatingDataError("cannot build a SparseStore from zero triples")

        row = np.concatenate(row_chunks)
        col = np.concatenate(col_chunks)
        val = np.concatenate(val_chunks)
        shape = (
            (int(n_users), int(n_items))
            if direct
            else (len(user_pos), len(item_pos))
        )
        if row.size and (row.min() < 0 or row.max() >= shape[0]):
            raise RatingDataError("triple user index out of range")
        if col.size and (col.min() < 0 or col.max() >= shape[1]):
            raise RatingDataError("triple item index out of range")

        order = np.lexsort((col, row))
        row, col, val = row[order], col[order], val[order]
        if row.size > 1:
            dup = (row[1:] == row[:-1]) & (col[1:] == col[:-1])
            if dup.any():
                if (val[1:][dup] != val[:-1][dup]).any():
                    raise RatingDataError(
                        "conflicting duplicate ratings in the triple stream"
                    )
                keep = np.concatenate(([True], ~dup))
                row, col, val = row[keep], col[keep], val[keep]

        indptr = np.zeros(shape[0] + 1, dtype=np.int64)
        np.cumsum(np.bincount(row, minlength=shape[0]), out=indptr[1:])
        csr = sp.csr_matrix((val, col, indptr), shape=shape)
        return cls(
            csr,
            fill_value=fill_value,
            scale=scale,
            user_ids=None if direct else tuple(user_pos),
            item_ids=None if direct else tuple(item_pos),
        )

    # ------------------------------------------------------------------ #
    # RatingStore interface
    # ------------------------------------------------------------------ #

    @property
    def csr(self) -> sp.csr_matrix:
        """The underlying CSR matrix of explicit ratings (not a copy)."""
        return self._csr

    @property
    def n_users(self) -> int:
        """Number of user rows."""
        return self._csr.shape[0]

    @property
    def n_items(self) -> int:
        """Catalogue size (number of item columns)."""
        return self._csr.shape[1]

    @property
    def shape(self) -> tuple[int, int]:
        """``(n_users, n_items)``."""
        return tuple(self._csr.shape)

    @property
    def scale(self) -> RatingScale:
        """The bounded rating scale every stored value lies on."""
        return self._scale

    @property
    def density(self) -> float:
        """Fraction of cells stored explicitly (``nnz / (users * items)``)."""
        return self._csr.nnz / (self.n_users * self.n_items)

    @property
    def nbytes(self) -> int:
        """Resident size of the CSR arrays in bytes."""
        return int(
            self._csr.data.nbytes + self._csr.indices.nbytes + self._csr.indptr.nbytes
        )

    def _densify(self, csr: sp.csr_matrix) -> np.ndarray:
        """Write ``csr``'s stored ratings over a ``fill_value`` canvas."""
        n_rows = csr.shape[0]
        dense = np.full((n_rows, csr.shape[1]), self.fill_value, dtype=np.float64)
        counts = np.diff(csr.indptr)
        if csr.nnz:
            row_idx = np.repeat(np.arange(n_rows), counts)
            dense[row_idx, csr.indices] = csr.data
        return dense

    def block(self, start: int, stop: int) -> np.ndarray:
        """Densify the contiguous user rows ``start:stop``."""
        return self._densify(self._csr[start:stop])

    def rows(self, users: Sequence[int] | np.ndarray) -> np.ndarray:
        """Densify the rows of ``users``, in the given order."""
        users = np.asarray(users, dtype=np.int64)
        return self._densify(self._csr[users])

    def gather(
        self, users: Sequence[int] | np.ndarray, items: Sequence[int] | np.ndarray
    ) -> np.ndarray:
        """Densify the ``(users, items)`` sub-matrix of the given cells."""
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        sub = self._csr[users][:, items]
        return self._densify(sp.csr_matrix(sub))

    def iter_blocks(
        self, block_users: int = DEFAULT_BLOCK_USERS
    ) -> Iterator[tuple[int, int, np.ndarray]]:
        """Yield ``(start, stop, dense_block)`` over ``block_users``-row blocks."""
        for start in range(0, self.n_users, block_users):
            stop = min(start + block_users, self.n_users)
            yield start, stop, self.block(start, stop)

    def to_dense(self) -> np.ndarray:
        """Densify the whole matrix (use with care at scale)."""
        return self._densify(self._csr)

    # ------------------------------------------------------------------ #
    # MutableRatingStore interface
    # ------------------------------------------------------------------ #

    def _set_cells(self, users: np.ndarray, items: np.ndarray, values: np.ndarray) -> None:
        """Write validated cells through scipy's CSR assignment.

        Changing the sparsity structure of a CSR matrix is O(nnz) — scipy
        flags it with a ``SparseEfficiencyWarning`` — which is the price the
        serving layer pays per *batch*, not per update; the warning is
        silenced because the cost is a documented property of this method.
        """
        if not users.size:
            return
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", sp.SparseEfficiencyWarning)
            self._csr[users, items] = values
        self._csr.sort_indices()

    def upsert(
        self,
        users: Sequence[int] | np.ndarray,
        items: Sequence[int] | np.ndarray,
        values: Sequence[float] | np.ndarray,
    ) -> None:
        """Write ratings into individual cells, in place.

        Parameters
        ----------
        users, items:
            Parallel coordinate arrays of the cells to write.
        values:
            New ratings; must be finite and on the store's scale.

        Raises
        ------
        RatingDataError
            On out-of-range coordinates or off-scale / non-finite values.
        """
        users, items, values = _validate_update_coords(
            users, items, self.shape, values, self._scale
        )
        self._set_cells(users, items, values)

    def delete(
        self,
        users: Sequence[int] | np.ndarray,
        items: Sequence[int] | np.ndarray,
    ) -> None:
        """Revert individual cells to :attr:`fill_value`, in place.

        The cells become indistinguishable from never-rated cells on the
        dense read side (densification writes stored ratings over a
        ``fill_value`` canvas, so an explicit ``fill_value`` entry and a
        missing entry read back identically).

        Parameters
        ----------
        users, items:
            Parallel coordinate arrays of the cells to delete.

        Raises
        ------
        RatingDataError
            On out-of-range coordinates.
        """
        users, items, _ = _validate_update_coords(
            users, items, self.shape, None, self._scale
        )
        self._set_cells(
            users, items, np.full(users.shape, self.fill_value, dtype=np.float64)
        )

    def clear_rows(self, users: Sequence[int] | np.ndarray) -> None:
        """Revert whole user rows to :attr:`fill_value` (user "removal").

        Parameters
        ----------
        users:
            User indices whose every rating is deleted.  The rows stay in
            the store (indices are positional and must remain stable); the
            serving layer additionally tombstones the users.
        """
        users = np.asarray(users, dtype=np.int64).ravel()
        if users.size and (users.min() < 0 or users.max() >= self.n_users):
            raise RatingDataError("update user index out of range")
        indptr = self._csr.indptr
        data = self._csr.data
        for user in users:
            data[indptr[user]:indptr[user + 1]] = self.fill_value

    def append_users(self, rows: np.ndarray) -> None:
        """Append new trailing user rows.

        Only cells differing from :attr:`fill_value` are stored explicitly,
        so appended rows cost memory proportional to their non-fill ratings.
        External ``user_ids`` labels (positional, presentation-only) are
        dropped because the new rows have none.

        Parameters
        ----------
        rows:
            Dense ``(m, n_items)`` ratings of the new users; must be
            complete, finite and on the store's scale.
        """
        rows = _validate_new_rows(rows, self.n_items, self._scale)
        mask = rows != self.fill_value
        r, c = np.nonzero(mask)
        new_csr = sp.csr_matrix(
            (rows[r, c], (r, c)), shape=(rows.shape[0], self.n_items), dtype=np.float64
        )
        self._csr = sp.vstack([self._csr, new_csr], format="csr")
        self._csr.sort_indices()
        self.user_ids = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SparseStore(n_users={self.n_users}, n_items={self.n_items}, "
            f"nnz={self._csr.nnz}, fill={self.fill_value})"
        )


def as_store(ratings: "RatingStore | RatingMatrix | np.ndarray") -> RatingStore:
    """Coerce any accepted ``ratings`` input into a :class:`RatingStore`.

    Existing stores pass through untouched; a complete
    :class:`RatingMatrix` or raw 2-D array is wrapped in a
    :class:`DenseStore` without copying.
    """
    if isinstance(ratings, (DenseStore, SparseStore)):
        return ratings
    if isinstance(ratings, RatingStore):  # third-party implementations
        return ratings
    if isinstance(ratings, RatingMatrix):
        return DenseStore.from_matrix(ratings)
    return DenseStore(np.asarray(ratings, dtype=float))
