"""Rating storage backends: the :class:`RatingStore` protocol and its
dense / CSR-sparse implementations.

The greedy group-formation algorithms of the paper only ever consume rating
data through a handful of access patterns — dense *row blocks* for building
top-k tables, dense *row gathers* for scoring a formed group on its
recommended items, and streaming *block reductions* for the left-over
group's semantics scores.  :class:`RatingStore` captures exactly those
patterns, so every layer above (preferences, engine, baselines, exact
solvers, experiments) can run off either storage:

``DenseStore``
    The historical representation: one complete ``float64`` ndarray.  Zero
    conversion cost; ``block``/``rows`` return views/fancy-indexed copies of
    the underlying array, so results through a ``DenseStore`` are bit-
    identical to passing the raw array.
``SparseStore``
    A ``scipy.sparse`` CSR matrix of the *explicit* ratings plus a
    ``fill_value`` giving the rating of every unobserved cell.  Real
    explicit-feedback data (MovieLens, Yahoo! Music) is >95% sparse, and a
    million-user instance only ever needs to be densified a block of rows at
    a time — which is what keeps the sharded formation path inside a few GB
    of RSS where the dense matrix would need hundreds.

Densification of a ``SparseStore`` block writes the stored ratings over a
``fill_value`` canvas (no arithmetic on the stored values), so a
``SparseStore`` built from a complete matrix reproduces that matrix bit for
bit — the dense↔sparse parity suite in ``tests/core/test_store_parity.py``
relies on this.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from typing import Hashable, Protocol, runtime_checkable

import numpy as np
from scipy import sparse as sp

from repro.core.errors import RatingDataError
from repro.recsys.matrix import RatingMatrix, RatingScale

__all__ = [
    "RatingStore",
    "DenseStore",
    "SparseStore",
    "as_store",
    "DEFAULT_BLOCK_USERS",
]

#: Default number of users densified at a time by block iteration.  Sized so
#: a block of a 10k-item catalogue costs ~160 MB — small enough to keep a
#: million-user run inside the acceptance memory budget, large enough that
#: per-block numpy dispatch overhead is negligible.
DEFAULT_BLOCK_USERS = 2048


@runtime_checkable
class RatingStore(Protocol):
    """Access patterns the formation stack needs from rating storage.

    All methods return dense ``float64`` arrays; implementations decide how
    the data lives at rest.  Ratings must be complete (every user/item cell
    has a value — explicit or via a documented fill) and finite.
    """

    @property
    def n_users(self) -> int: ...

    @property
    def n_items(self) -> int: ...

    @property
    def shape(self) -> tuple[int, int]: ...

    @property
    def scale(self) -> RatingScale: ...

    @property
    def density(self) -> float:
        """Fraction of cells stored explicitly (1.0 for dense storage)."""
        ...

    @property
    def nbytes(self) -> int:
        """Resident size of the stored representation in bytes."""
        ...

    def block(self, start: int, stop: int) -> np.ndarray:
        """Dense ``(stop - start, n_items)`` slice of contiguous user rows."""
        ...

    def rows(self, users: Sequence[int] | np.ndarray) -> np.ndarray:
        """Dense rows for an arbitrary set of users, in the given order."""
        ...

    def gather(
        self, users: Sequence[int] | np.ndarray, items: Sequence[int] | np.ndarray
    ) -> np.ndarray:
        """Dense ``(len(users), len(items))`` sub-matrix."""
        ...

    def iter_blocks(
        self, block_users: int = DEFAULT_BLOCK_USERS
    ) -> Iterator[tuple[int, int, np.ndarray]]:
        """Yield ``(start, stop, dense_block)`` over all users in order."""
        ...

    def to_dense(self) -> np.ndarray:
        """The full dense ``(n_users, n_items)`` array (use with care)."""
        ...


def _validate_dense(values: np.ndarray) -> np.ndarray:
    values = np.asarray(values, dtype=float)
    if values.ndim != 2:
        raise RatingDataError(
            f"rating store expects a 2-D user x item array, got shape {values.shape}"
        )
    if values.shape[0] == 0 or values.shape[1] == 0:
        raise RatingDataError(
            f"rating store needs at least one user and one item, got {values.shape}"
        )
    if not np.isfinite(values).all():
        raise RatingDataError(
            "rating store requires complete, finite ratings; fill missing entries "
            "(repro.recsys.complete_matrix) before building a store"
        )
    return values


class DenseStore:
    """A :class:`RatingStore` over one complete in-memory ``float64`` array.

    Examples
    --------
    >>> import numpy as np
    >>> store = DenseStore(np.array([[5.0, 1.0], [2.0, 4.0]]))
    >>> store.block(0, 1)
    array([[5., 1.]])
    """

    def __init__(
        self,
        values: np.ndarray,
        scale: RatingScale | None = None,
        copy: bool = False,
        validate: bool = True,
    ) -> None:
        values = _validate_dense(values) if validate else np.asarray(values, dtype=float)
        self._values = np.array(values, copy=True) if copy else values
        self._scale = scale if scale is not None else RatingScale()

    @classmethod
    def from_matrix(cls, matrix: RatingMatrix) -> "DenseStore":
        """Wrap a complete :class:`~repro.recsys.matrix.RatingMatrix`."""
        return cls(matrix.values, scale=matrix.scale)

    @property
    def values(self) -> np.ndarray:
        """The wrapped dense array (not a copy)."""
        return self._values

    @property
    def n_users(self) -> int:
        return self._values.shape[0]

    @property
    def n_items(self) -> int:
        return self._values.shape[1]

    @property
    def shape(self) -> tuple[int, int]:
        return self._values.shape

    @property
    def scale(self) -> RatingScale:
        return self._scale

    @property
    def density(self) -> float:
        return 1.0

    @property
    def nbytes(self) -> int:
        return int(self._values.nbytes)

    def block(self, start: int, stop: int) -> np.ndarray:
        return self._values[start:stop]

    def rows(self, users: Sequence[int] | np.ndarray) -> np.ndarray:
        return self._values[np.asarray(users, dtype=np.int64)]

    def gather(
        self, users: Sequence[int] | np.ndarray, items: Sequence[int] | np.ndarray
    ) -> np.ndarray:
        return self._values[
            np.ix_(np.asarray(users, dtype=np.int64), np.asarray(items, dtype=np.int64))
        ]

    def iter_blocks(
        self, block_users: int = DEFAULT_BLOCK_USERS
    ) -> Iterator[tuple[int, int, np.ndarray]]:
        for start in range(0, self.n_users, block_users):
            stop = min(start + block_users, self.n_users)
            yield start, stop, self._values[start:stop]

    def to_dense(self) -> np.ndarray:
        return self._values

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DenseStore(n_users={self.n_users}, n_items={self.n_items})"


class SparseStore:
    """A :class:`RatingStore` over a CSR matrix of explicit ratings.

    Parameters
    ----------
    explicit:
        ``scipy.sparse`` matrix (any format; converted to CSR) holding the
        explicitly observed ratings.  Stored values may legitimately equal
        ``fill_value`` — densification overwrites the fill canvas with the
        stored values, it does not rely on "nonzero means rated".
    fill_value:
        Rating assumed for every unobserved cell (default: the scale
        minimum, the conservative completion for bounded explicit-feedback
        scales).  Must lie on the scale.
    scale:
        Rating scale (default 1–5).
    user_ids, item_ids:
        Optional external labels, carried for presentation only.
    """

    def __init__(
        self,
        explicit: sp.spmatrix | sp.sparray,
        fill_value: float | None = None,
        scale: RatingScale | None = None,
        user_ids: Sequence[Hashable] | None = None,
        item_ids: Sequence[Hashable] | None = None,
    ) -> None:
        if isinstance(explicit, sp.csr_matrix) and explicit.dtype == np.float64:
            csr = explicit  # adopt without copying (matters at 10^8 ratings)
        else:
            csr = sp.csr_matrix(explicit, dtype=np.float64)
        if csr.shape[0] == 0 or csr.shape[1] == 0:
            raise RatingDataError(
                f"rating store needs at least one user and one item, got {csr.shape}"
            )
        csr.sort_indices()
        self._csr = csr
        self._scale = scale if scale is not None else RatingScale()
        self.fill_value = (
            float(self._scale.minimum) if fill_value is None else float(fill_value)
        )
        if not self._scale.contains(self.fill_value):
            raise RatingDataError(
                f"fill_value {self.fill_value} lies outside the rating scale "
                f"[{self._scale.minimum}, {self._scale.maximum}]"
            )
        if csr.nnz and not np.isfinite(csr.data).all():
            raise RatingDataError("sparse rating store contains non-finite ratings")
        if csr.nnz and not self._scale.contains(csr.data):
            raise RatingDataError(
                "sparse rating store contains values outside the declared scale "
                f"[{self._scale.minimum}, {self._scale.maximum}]"
            )
        self.user_ids = tuple(user_ids) if user_ids is not None else None
        self.item_ids = tuple(item_ids) if item_ids is not None else None

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_matrix(
        cls, matrix: RatingMatrix, fill_value: float | None = None
    ) -> "SparseStore":
        """Build from a :class:`RatingMatrix` (missing entries become fill).

        A *complete* matrix round-trips bit for bit: every cell is stored
        explicitly, so the fill value never shows through.
        """
        mask = matrix.known_mask
        rows, cols = np.nonzero(mask)
        data = matrix.values[rows, cols]
        explicit = sp.csr_matrix(
            (data, (rows, cols)), shape=matrix.shape, dtype=np.float64
        )
        return cls(
            explicit,
            fill_value=fill_value,
            scale=matrix.scale,
            user_ids=matrix.user_ids,
            item_ids=matrix.item_ids,
        )

    @classmethod
    def from_triples(
        cls,
        triples: Iterable[tuple[Hashable, Hashable, float]],
        n_users: int | None = None,
        n_items: int | None = None,
        fill_value: float | None = None,
        scale: RatingScale | None = None,
        chunk_size: int = 1 << 20,
    ) -> "SparseStore":
        """Build a store from a (possibly huge) stream of rating triples.

        The stream is consumed in ``chunk_size`` pieces, so only the
        coordinate arrays — never a dense matrix — are ever resident.  User
        and item labels are mapped to positional indices in first-seen order
        (deterministic for a deterministic stream); pass integer ``n_users``
        / ``n_items`` with integer-index triples to skip label mapping.

        Duplicate ``(user, item)`` pairs with conflicting ratings raise
        :class:`~repro.core.errors.RatingDataError`; exact duplicates are
        tolerated (the same contract as ``RatingMatrix.from_triples``).
        """
        direct = n_users is not None and n_items is not None
        user_pos: dict[Hashable, int] = {}
        item_pos: dict[Hashable, int] = {}
        row_chunks: list[np.ndarray] = []
        col_chunks: list[np.ndarray] = []
        val_chunks: list[np.ndarray] = []
        rows: list[int] = []
        cols: list[int] = []
        vals: list[float] = []

        def flush() -> None:
            if rows:
                row_chunks.append(np.asarray(rows, dtype=np.int64))
                col_chunks.append(np.asarray(cols, dtype=np.int64))
                val_chunks.append(np.asarray(vals, dtype=np.float64))
                rows.clear()
                cols.clear()
                vals.clear()

        for user, item, rating in triples:
            if direct:
                rows.append(int(user))
                cols.append(int(item))
            else:
                rows.append(user_pos.setdefault(user, len(user_pos)))
                cols.append(item_pos.setdefault(item, len(item_pos)))
            vals.append(float(rating))
            if len(rows) >= chunk_size:
                flush()
        flush()
        if not row_chunks:
            raise RatingDataError("cannot build a SparseStore from zero triples")

        row = np.concatenate(row_chunks)
        col = np.concatenate(col_chunks)
        val = np.concatenate(val_chunks)
        shape = (
            (int(n_users), int(n_items))
            if direct
            else (len(user_pos), len(item_pos))
        )
        if row.size and (row.min() < 0 or row.max() >= shape[0]):
            raise RatingDataError("triple user index out of range")
        if col.size and (col.min() < 0 or col.max() >= shape[1]):
            raise RatingDataError("triple item index out of range")

        order = np.lexsort((col, row))
        row, col, val = row[order], col[order], val[order]
        if row.size > 1:
            dup = (row[1:] == row[:-1]) & (col[1:] == col[:-1])
            if dup.any():
                if (val[1:][dup] != val[:-1][dup]).any():
                    raise RatingDataError(
                        "conflicting duplicate ratings in the triple stream"
                    )
                keep = np.concatenate(([True], ~dup))
                row, col, val = row[keep], col[keep], val[keep]

        indptr = np.zeros(shape[0] + 1, dtype=np.int64)
        np.cumsum(np.bincount(row, minlength=shape[0]), out=indptr[1:])
        csr = sp.csr_matrix((val, col, indptr), shape=shape)
        return cls(
            csr,
            fill_value=fill_value,
            scale=scale,
            user_ids=None if direct else tuple(user_pos),
            item_ids=None if direct else tuple(item_pos),
        )

    # ------------------------------------------------------------------ #
    # RatingStore interface
    # ------------------------------------------------------------------ #

    @property
    def csr(self) -> sp.csr_matrix:
        """The underlying CSR matrix of explicit ratings (not a copy)."""
        return self._csr

    @property
    def n_users(self) -> int:
        return self._csr.shape[0]

    @property
    def n_items(self) -> int:
        return self._csr.shape[1]

    @property
    def shape(self) -> tuple[int, int]:
        return tuple(self._csr.shape)

    @property
    def scale(self) -> RatingScale:
        return self._scale

    @property
    def density(self) -> float:
        return self._csr.nnz / (self.n_users * self.n_items)

    @property
    def nbytes(self) -> int:
        return int(
            self._csr.data.nbytes + self._csr.indices.nbytes + self._csr.indptr.nbytes
        )

    def _densify(self, csr: sp.csr_matrix) -> np.ndarray:
        """Write ``csr``'s stored ratings over a ``fill_value`` canvas."""
        n_rows = csr.shape[0]
        dense = np.full((n_rows, csr.shape[1]), self.fill_value, dtype=np.float64)
        counts = np.diff(csr.indptr)
        if csr.nnz:
            row_idx = np.repeat(np.arange(n_rows), counts)
            dense[row_idx, csr.indices] = csr.data
        return dense

    def block(self, start: int, stop: int) -> np.ndarray:
        return self._densify(self._csr[start:stop])

    def rows(self, users: Sequence[int] | np.ndarray) -> np.ndarray:
        users = np.asarray(users, dtype=np.int64)
        return self._densify(self._csr[users])

    def gather(
        self, users: Sequence[int] | np.ndarray, items: Sequence[int] | np.ndarray
    ) -> np.ndarray:
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        sub = self._csr[users][:, items]
        return self._densify(sp.csr_matrix(sub))

    def iter_blocks(
        self, block_users: int = DEFAULT_BLOCK_USERS
    ) -> Iterator[tuple[int, int, np.ndarray]]:
        for start in range(0, self.n_users, block_users):
            stop = min(start + block_users, self.n_users)
            yield start, stop, self.block(start, stop)

    def to_dense(self) -> np.ndarray:
        return self._densify(self._csr)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SparseStore(n_users={self.n_users}, n_items={self.n_items}, "
            f"nnz={self._csr.nnz}, fill={self.fill_value})"
        )


def as_store(ratings: "RatingStore | RatingMatrix | np.ndarray") -> RatingStore:
    """Coerce any accepted rating input into a :class:`RatingStore`.

    Existing stores pass through untouched; a complete
    :class:`RatingMatrix` or raw 2-D array is wrapped in a
    :class:`DenseStore` without copying.
    """
    if isinstance(ratings, (DenseStore, SparseStore)):
        return ratings
    if isinstance(ratings, RatingStore):  # third-party implementations
        return ratings
    if isinstance(ratings, RatingMatrix):
        return DenseStore.from_matrix(ratings)
    return DenseStore(np.asarray(ratings, dtype=float))
