"""Rating-completion pipeline and simple mean predictors.

The group-formation problem assumes every user has a preference score for
every item (observed or predicted, paper §2.1).  :func:`complete_matrix` is
the bridge: it takes a sparse :class:`~repro.recsys.matrix.RatingMatrix`, a
predictor, and returns a complete matrix whose missing entries were filled by
the predictor and clipped to the rating scale.

The mean predictors here double as baselines for the collaborative-filtering
evaluation and as fallbacks inside the kNN / matrix-factorisation predictors
when neighbourhood information is unavailable.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.core.errors import RatingDataError
from repro.recsys.matrix import RatingMatrix

__all__ = [
    "RatingPredictor",
    "GlobalMeanPredictor",
    "UserMeanPredictor",
    "ItemMeanPredictor",
    "complete_matrix",
]


class RatingPredictor(Protocol):
    """Protocol implemented by every rating predictor in :mod:`repro.recsys`.

    A predictor is fitted on a (typically sparse) rating matrix and can then
    predict a rating for any ``(user, item)`` positional pair, or densely for
    the whole matrix via :meth:`predict_all`.
    """

    def fit(self, ratings: RatingMatrix) -> "RatingPredictor":
        """Fit the predictor on observed ratings and return ``self``."""
        ...

    def predict(self, user: int, item: int) -> float:
        """Predict the rating of positional ``user`` for positional ``item``."""
        ...

    def predict_all(self) -> np.ndarray:
        """Predict the full ``(n_users, n_items)`` rating array."""
        ...


class _FittedMixin:
    """Shared guard for predictors that require :meth:`fit` before use."""

    _ratings: RatingMatrix | None = None

    def _require_fitted(self) -> RatingMatrix:
        if self._ratings is None:
            raise RatingDataError(
                f"{type(self).__name__} must be fitted before predicting"
            )
        return self._ratings


class GlobalMeanPredictor(_FittedMixin):
    """Predict the global mean rating for every missing entry."""

    def fit(self, ratings: RatingMatrix) -> "GlobalMeanPredictor":
        self._ratings = ratings
        self._mean = ratings.global_mean()
        return self

    def predict(self, user: int, item: int) -> float:
        self._require_fitted()
        return float(self._mean)

    def predict_all(self) -> np.ndarray:
        ratings = self._require_fitted()
        return np.full(ratings.shape, self._mean)


class UserMeanPredictor(_FittedMixin):
    """Predict each user's mean observed rating for every item."""

    def fit(self, ratings: RatingMatrix) -> "UserMeanPredictor":
        self._ratings = ratings
        self._user_means = ratings.user_means()
        return self

    def predict(self, user: int, item: int) -> float:
        self._require_fitted()
        return float(self._user_means[user])

    def predict_all(self) -> np.ndarray:
        ratings = self._require_fitted()
        return np.repeat(self._user_means[:, None], ratings.n_items, axis=1)


class ItemMeanPredictor(_FittedMixin):
    """Predict each item's mean observed rating for every user."""

    def fit(self, ratings: RatingMatrix) -> "ItemMeanPredictor":
        self._ratings = ratings
        self._item_means = ratings.item_means()
        return self

    def predict(self, user: int, item: int) -> float:
        self._require_fitted()
        return float(self._item_means[item])

    def predict_all(self) -> np.ndarray:
        ratings = self._require_fitted()
        return np.repeat(self._item_means[None, :], ratings.n_users, axis=0)


def complete_matrix(
    ratings: RatingMatrix,
    predictor: RatingPredictor | None = None,
    round_to_scale: bool = False,
) -> RatingMatrix:
    """Fill every missing rating using ``predictor`` and return a complete matrix.

    Parameters
    ----------
    ratings:
        Possibly sparse rating matrix.
    predictor:
        Any object implementing :class:`RatingPredictor`.  Defaults to
        :class:`~repro.recsys.knn.ItemKNNPredictor`, the conventional choice
        for explicit-feedback movie/music data.  The predictor is fitted on
        ``ratings`` inside this function.
    round_to_scale:
        When ``True`` the filled entries are rounded to integer rating levels,
        matching datasets whose observed ratings are integers.  Observed
        entries are never modified either way.

    Returns
    -------
    RatingMatrix
        A complete matrix (``is_complete`` is ``True``) sharing labels and
        scale with the input.
    """
    if ratings.is_complete:
        return ratings.copy()
    if predictor is None:
        from repro.recsys.knn import ItemKNNPredictor

        predictor = ItemKNNPredictor()
    predictor.fit(ratings)
    predicted = np.asarray(predictor.predict_all(), dtype=float)
    if predicted.shape != ratings.shape:
        raise RatingDataError(
            f"predictor returned shape {predicted.shape}, expected {ratings.shape}"
        )
    predicted = ratings.scale.clip(predicted)
    if round_to_scale:
        predicted = ratings.scale.round_to_scale(predicted)
    filled = np.where(ratings.known_mask, ratings.values, predicted)
    if np.isnan(filled).any():
        raise RatingDataError("predictor produced NaN for at least one missing entry")
    return ratings.with_values(filled)
