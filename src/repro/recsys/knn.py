"""Neighbourhood-based collaborative filtering (user-kNN and item-kNN).

These predictors implement the "standard" rating-prediction step the paper
applies to the Yahoo! Music snapshot before running group formation.  Both
follow the classic mean-centred weighted-average formulation with Pearson
(or cosine) similarity and significance weighting:

``r_hat(u, i) = mu_u + sum_v sim(u, v) * (r(v, i) - mu_v) / sum_v |sim(u, v)|``

for the user-based variant, and the transposed analogue for the item-based
variant.  Predictions fall back to the user (or item) mean when no neighbour
rated the target.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import RatingDataError
from repro.recsys.matrix import RatingMatrix
from repro.utils.validation import require_in, require_positive_int

__all__ = ["UserKNNPredictor", "ItemKNNPredictor"]


def _centered_similarity(
    values: np.ndarray,
    mask: np.ndarray,
    metric: str,
    min_overlap: int,
    shrinkage: float,
) -> np.ndarray:
    """Pairwise row similarity for a partially observed matrix.

    Parameters
    ----------
    values:
        ``(n_rows, n_cols)`` array with ``NaN`` for missing entries.
    mask:
        Boolean observed mask of the same shape.
    metric:
        ``"pearson"`` (mean-centred cosine) or ``"cosine"``.
    min_overlap:
        Pairs with fewer co-rated columns than this get similarity 0.
    shrinkage:
        Significance-weighting constant: similarity is multiplied by
        ``overlap / (overlap + shrinkage)``, damping similarities estimated
        from very few co-ratings.

    Returns
    -------
    numpy.ndarray
        ``(n_rows, n_rows)`` similarity matrix with zero diagonal.
    """
    filled = np.where(mask, values, 0.0)
    if metric == "pearson":
        with np.errstate(invalid="ignore"):
            row_means = np.where(
                mask.sum(axis=1) > 0,
                np.nansum(values, axis=1) / np.maximum(mask.sum(axis=1), 1),
                0.0,
            )
        centred = np.where(mask, values - row_means[:, None], 0.0)
    elif metric == "cosine":
        centred = filled
    else:  # pragma: no cover - guarded by require_in in callers
        raise ValueError(f"unknown similarity metric {metric!r}")

    dot = centred @ centred.T
    norms = np.sqrt((centred**2).sum(axis=1))
    denom = np.outer(norms, norms)
    with np.errstate(divide="ignore", invalid="ignore"):
        sim = np.where(denom > 0, dot / denom, 0.0)

    overlap = mask.astype(float) @ mask.astype(float).T
    if shrinkage > 0:
        sim = sim * (overlap / (overlap + shrinkage))
    sim = np.where(overlap >= min_overlap, sim, 0.0)
    np.fill_diagonal(sim, 0.0)
    return sim


class UserKNNPredictor:
    """User-based k-nearest-neighbour rating predictor.

    Parameters
    ----------
    n_neighbors:
        Number of most-similar users considered per prediction.
    metric:
        ``"pearson"`` (default) or ``"cosine"`` similarity.
    min_overlap:
        Minimum number of co-rated items for a similarity to be trusted.
    shrinkage:
        Significance-weighting constant (0 disables it).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.recsys import RatingMatrix
    >>> values = np.array([[5, 4, np.nan], [5, 4, 2.0], [1, 2, 5.0]])
    >>> predictor = UserKNNPredictor(n_neighbors=2).fit(RatingMatrix(values))
    >>> round(predictor.predict(0, 2), 1) <= 3.0
    True
    """

    def __init__(
        self,
        n_neighbors: int = 20,
        metric: str = "pearson",
        min_overlap: int = 1,
        shrinkage: float = 10.0,
    ) -> None:
        self.n_neighbors = require_positive_int(n_neighbors, "n_neighbors")
        self.metric = require_in(metric, "metric", {"pearson", "cosine"})
        self.min_overlap = require_positive_int(min_overlap, "min_overlap")
        if shrinkage < 0:
            raise ValueError(f"shrinkage must be non-negative, got {shrinkage}")
        self.shrinkage = float(shrinkage)
        self._ratings: RatingMatrix | None = None

    def fit(self, ratings: RatingMatrix) -> "UserKNNPredictor":
        """Compute the user-user similarity matrix."""
        self._ratings = ratings
        self._mask = ratings.known_mask
        self._user_means = ratings.user_means()
        self._similarity = _centered_similarity(
            ratings.values, self._mask, self.metric, self.min_overlap, self.shrinkage
        )
        return self

    def _require_fitted(self) -> RatingMatrix:
        if self._ratings is None:
            raise RatingDataError("UserKNNPredictor must be fitted before predicting")
        return self._ratings

    def predict(self, user: int, item: int) -> float:
        """Predict the rating of ``user`` for ``item``."""
        ratings = self._require_fitted()
        raters = np.nonzero(self._mask[:, item])[0]
        raters = raters[raters != user]
        if raters.size == 0:
            return float(self._user_means[user])
        sims = self._similarity[user, raters]
        order = np.argsort(-np.abs(sims))[: self.n_neighbors]
        neighbors = raters[order]
        weights = sims[order]
        denom = np.abs(weights).sum()
        if denom <= 1e-12:
            return float(self._user_means[user])
        deviations = ratings.values[neighbors, item] - self._user_means[neighbors]
        estimate = self._user_means[user] + float((weights * deviations).sum() / denom)
        return float(ratings.scale.clip(estimate))

    def predict_all(self) -> np.ndarray:
        """Dense predictions for every ``(user, item)`` pair.

        Vectorised over items: for each item the top-``n_neighbors`` raters of
        that item are selected per user from the pre-computed similarity
        matrix.
        """
        ratings = self._require_fitted()
        n_users, n_items = ratings.shape
        result = np.repeat(self._user_means[:, None], n_items, axis=1)
        centred = np.where(self._mask, ratings.values - self._user_means[:, None], 0.0)
        for item in range(n_items):
            raters = np.nonzero(self._mask[:, item])[0]
            if raters.size == 0:
                continue
            sims = self._similarity[:, raters]
            if raters.size > self.n_neighbors:
                # Keep only the strongest n_neighbors per user (by |sim|).
                keep = np.argpartition(-np.abs(sims), self.n_neighbors - 1, axis=1)[
                    :, : self.n_neighbors
                ]
                pruned = np.zeros_like(sims)
                np.put_along_axis(pruned, keep, np.take_along_axis(sims, keep, axis=1), axis=1)
                sims = pruned
            denom = np.abs(sims).sum(axis=1)
            numer = sims @ centred[raters, item]
            valid = denom > 1e-12
            result[valid, item] = self._user_means[valid] + numer[valid] / denom[valid]
        result = np.where(self._mask, ratings.values, result)
        return np.asarray(ratings.scale.clip(result))


class ItemKNNPredictor:
    """Item-based k-nearest-neighbour rating predictor.

    The symmetric counterpart of :class:`UserKNNPredictor`: similarities are
    computed between item columns (adjusted-cosine by default, i.e. user-mean
    centred), and a user's predicted rating for an item is the similarity-
    weighted average of that user's ratings on the most similar items.
    """

    def __init__(
        self,
        n_neighbors: int = 20,
        metric: str = "pearson",
        min_overlap: int = 1,
        shrinkage: float = 10.0,
    ) -> None:
        self.n_neighbors = require_positive_int(n_neighbors, "n_neighbors")
        self.metric = require_in(metric, "metric", {"pearson", "cosine"})
        self.min_overlap = require_positive_int(min_overlap, "min_overlap")
        if shrinkage < 0:
            raise ValueError(f"shrinkage must be non-negative, got {shrinkage}")
        self.shrinkage = float(shrinkage)
        self._ratings: RatingMatrix | None = None

    def fit(self, ratings: RatingMatrix) -> "ItemKNNPredictor":
        """Compute the item-item similarity matrix (adjusted cosine)."""
        self._ratings = ratings
        self._mask = ratings.known_mask
        self._user_means = ratings.user_means()
        self._item_means = ratings.item_means()
        # Adjusted cosine: centre by *user* mean, then compare item columns.
        centred = np.where(
            self._mask, ratings.values - self._user_means[:, None], np.nan
        )
        similarity = _centered_similarity(
            centred.T, self._mask.T, "cosine", self.min_overlap, self.shrinkage
        )
        # Item-based predictions average the user's *raw* ratings, so only
        # positively-similar items carry useful signal; negative similarities
        # would subtract a positive rating and bias predictions low.
        self._similarity = np.maximum(similarity, 0.0)
        return self

    def _require_fitted(self) -> RatingMatrix:
        if self._ratings is None:
            raise RatingDataError("ItemKNNPredictor must be fitted before predicting")
        return self._ratings

    def predict(self, user: int, item: int) -> float:
        """Predict the rating of ``user`` for ``item``."""
        ratings = self._require_fitted()
        rated = np.nonzero(self._mask[user])[0]
        rated = rated[rated != item]
        if rated.size == 0:
            return float(self._item_means[item])
        sims = self._similarity[item, rated]
        order = np.argsort(-np.abs(sims))[: self.n_neighbors]
        neighbors = rated[order]
        weights = sims[order]
        denom = np.abs(weights).sum()
        if denom <= 1e-12:
            return float(self._item_means[item])
        estimate = float((weights * ratings.values[user, neighbors]).sum() / denom)
        return float(ratings.scale.clip(estimate))

    def predict_all(self) -> np.ndarray:
        """Dense predictions for every ``(user, item)`` pair."""
        ratings = self._require_fitted()
        n_users, n_items = ratings.shape
        result = np.repeat(self._item_means[None, :], n_users, axis=0)
        values = np.where(self._mask, ratings.values, 0.0)
        for item in range(n_items):
            sims = self._similarity[item]
            if not np.any(sims):
                continue
            if n_items > self.n_neighbors:
                keep = np.argpartition(-np.abs(sims), self.n_neighbors - 1)[
                    : self.n_neighbors
                ]
                pruned = np.zeros_like(sims)
                pruned[keep] = sims[keep]
                sims = pruned
            weights = self._mask.astype(float) * np.abs(sims)[None, :]
            denom = weights.sum(axis=1)
            numer = (values * sims[None, :]).sum(axis=1)
            valid = denom > 1e-12
            result[valid, item] = numer[valid] / denom[valid]
        result = np.where(self._mask, ratings.values, result)
        return np.asarray(ratings.scale.clip(result))
