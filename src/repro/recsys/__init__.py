"""Recommender-system substrate: rating data and rating prediction.

The group-formation algorithms of the paper operate on *complete* preference
information: every user has an (observed or predicted) rating for every item.
Real rating datasets such as MovieLens or Yahoo! Music are sparse, so the
paper applies "standard pre-processing for collaborative filtering and rating
prediction".  This subpackage provides that substrate:

* :class:`repro.recsys.matrix.RatingMatrix` — the central user x item rating
  container (sparse or complete) shared by every other subpackage.
* :mod:`repro.recsys.knn` — user-based and item-based k-nearest-neighbour
  collaborative filtering.
* :mod:`repro.recsys.mf` — regularised matrix factorisation trained with SGD.
* :mod:`repro.recsys.predict` — the completion pipeline that fills missing
  ratings and clips them to the rating scale.
* :mod:`repro.recsys.evaluation` — hold-out splits, cross-validation folds,
  RMSE / MAE.
"""

from repro.recsys.evaluation import (
    EvaluationReport,
    cross_validation_folds,
    evaluate_predictor,
    mae,
    rmse,
    train_test_split,
)
from repro.recsys.knn import ItemKNNPredictor, UserKNNPredictor
from repro.recsys.matrix import RatingMatrix, RatingScale
from repro.recsys.mf import MatrixFactorizationPredictor
from repro.recsys.predict import (
    GlobalMeanPredictor,
    ItemMeanPredictor,
    UserMeanPredictor,
    complete_matrix,
)
from repro.recsys.store import (
    DEFAULT_BLOCK_USERS,
    DenseStore,
    MutableRatingStore,
    RatingStore,
    SparseStore,
    as_store,
)

__all__ = [
    "RatingMatrix",
    "RatingScale",
    "RatingStore",
    "MutableRatingStore",
    "DenseStore",
    "SparseStore",
    "as_store",
    "DEFAULT_BLOCK_USERS",
    "UserKNNPredictor",
    "ItemKNNPredictor",
    "MatrixFactorizationPredictor",
    "GlobalMeanPredictor",
    "UserMeanPredictor",
    "ItemMeanPredictor",
    "complete_matrix",
    "train_test_split",
    "cross_validation_folds",
    "evaluate_predictor",
    "EvaluationReport",
    "rmse",
    "mae",
]
