"""The central user x item rating container used throughout the library.

The paper's data model (§2.1) is an explicit-feedback rating matrix
``sc(u, i)`` on a bounded scale (e.g. 1–5), where a rating is either provided
by the user or predicted by the recommender system.  :class:`RatingMatrix`
represents both cases with a dense ``numpy`` array using ``NaN`` for missing
entries; a *complete* matrix (no ``NaN``) is what the group-formation
algorithms consume.

Dense storage is a deliberate choice: the paper's experiments use at most a
few hundred thousand users and ten thousand items for the greedy algorithms,
and the algorithms themselves need row-wise top-k scans which are fastest on
contiguous arrays.  For genuinely sparse workflows, :meth:`RatingMatrix.from_triples`
and :meth:`RatingMatrix.to_triples` provide a coordinate-format bridge.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from typing import Hashable

import numpy as np

from repro.core.errors import RatingDataError

__all__ = ["RatingScale", "RatingMatrix"]


@dataclass(frozen=True)
class RatingScale:
    """A closed rating scale ``[minimum, maximum]``.

    The paper assumes ratings come from a bounded discrete set ``R`` with
    ``rmin`` and ``rmax`` (e.g. 1–5 stars).  The absolute-error guarantees of
    the greedy LM algorithms are expressed in terms of ``rmax`` (Theorem 2)
    and ``k * rmax`` (Theorem 3), so the scale is carried alongside the data.

    Attributes
    ----------
    minimum:
        Smallest representable rating (``rmin``).
    maximum:
        Largest representable rating (``rmax``).
    """

    minimum: float = 1.0
    maximum: float = 5.0

    def __post_init__(self) -> None:
        if not self.maximum > self.minimum:
            raise ValueError(
                f"rating scale maximum ({self.maximum}) must exceed minimum "
                f"({self.minimum})"
            )

    @property
    def spread(self) -> float:
        """``maximum - minimum``."""
        return self.maximum - self.minimum

    def clip(self, values: np.ndarray | float) -> np.ndarray | float:
        """Clip ``values`` into the scale."""
        return np.clip(values, self.minimum, self.maximum)

    def round_to_scale(self, values: np.ndarray | float) -> np.ndarray | float:
        """Round ``values`` to the nearest integer rating and clip to the scale."""
        return self.clip(np.rint(values))

    def contains(self, values: np.ndarray | float) -> bool:
        """Return ``True`` when every finite entry of ``values`` is within scale."""
        arr = np.asarray(values, dtype=float)
        finite = arr[np.isfinite(arr)]
        if finite.size == 0:
            return True
        return bool((finite >= self.minimum).all() and (finite <= self.maximum).all())

    def integer_levels(self) -> np.ndarray:
        """All integer rating levels in the scale (used by synthetic generators)."""
        return np.arange(int(np.ceil(self.minimum)), int(np.floor(self.maximum)) + 1)


class RatingMatrix:
    """Dense user x item rating matrix with optional missing entries.

    Parameters
    ----------
    values:
        Array of shape ``(n_users, n_items)``; ``NaN`` marks a missing rating.
        The array is copied and stored as ``float64``.
    user_ids:
        Optional external user labels (defaults to ``0..n_users-1``).  Labels
        are only used for presentation and data loading; all algorithms work
        with positional indices.
    item_ids:
        Optional external item labels (defaults to ``0..n_items-1``).
    scale:
        The :class:`RatingScale`; out-of-scale finite values raise
        :class:`~repro.core.errors.RatingDataError`.

    Examples
    --------
    >>> import numpy as np
    >>> ratings = RatingMatrix(np.array([[5.0, 3.0], [np.nan, 4.0]]))
    >>> ratings.n_users, ratings.n_items
    (2, 2)
    >>> ratings.is_complete
    False
    """

    def __init__(
        self,
        values: np.ndarray | Sequence[Sequence[float]],
        user_ids: Sequence[Hashable] | None = None,
        item_ids: Sequence[Hashable] | None = None,
        scale: RatingScale | None = None,
    ) -> None:
        array = np.array(values, dtype=float, copy=True)
        if array.ndim != 2:
            raise RatingDataError(
                f"rating matrix must be 2-dimensional, got shape {array.shape}"
            )
        if array.shape[0] == 0 or array.shape[1] == 0:
            raise RatingDataError(
                f"rating matrix must have at least one user and one item, "
                f"got shape {array.shape}"
            )
        self._values = array
        self.scale = scale if scale is not None else RatingScale()
        if not self.scale.contains(array):
            raise RatingDataError(
                "rating matrix contains values outside the declared scale "
                f"[{self.scale.minimum}, {self.scale.maximum}]"
            )
        self.user_ids = self._normalise_labels(user_ids, array.shape[0], "user")
        self.item_ids = self._normalise_labels(item_ids, array.shape[1], "item")
        self._user_index = {label: idx for idx, label in enumerate(self.user_ids)}
        self._item_index = {label: idx for idx, label in enumerate(self.item_ids)}

    @staticmethod
    def _normalise_labels(
        labels: Sequence[Hashable] | None, expected: int, kind: str
    ) -> tuple[Hashable, ...]:
        if labels is None:
            return tuple(range(expected))
        labels = tuple(labels)
        if len(labels) != expected:
            raise RatingDataError(
                f"expected {expected} {kind} labels, got {len(labels)}"
            )
        if len(set(labels)) != len(labels):
            raise RatingDataError(f"{kind} labels must be unique")
        return labels

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_triples(
        cls,
        triples: Iterable[tuple[Hashable, Hashable, float]],
        scale: RatingScale | None = None,
        user_ids: Sequence[Hashable] | None = None,
        item_ids: Sequence[Hashable] | None = None,
    ) -> "RatingMatrix":
        """Build a matrix from ``(user, item, rating)`` triples.

        Unknown entries become ``NaN``.  Duplicate ``(user, item)`` pairs with
        conflicting ratings raise :class:`~repro.core.errors.RatingDataError`;
        exact duplicates are tolerated.

        Parameters
        ----------
        triples:
            Iterable of ``(user_label, item_label, rating)``.
        scale:
            Rating scale (default 1–5).
        user_ids, item_ids:
            Optional explicit label universes.  When omitted the labels found
            in the triples are used, sorted for determinism.
        """
        triples = list(triples)
        if not triples and (user_ids is None or item_ids is None):
            raise RatingDataError(
                "cannot build a RatingMatrix from zero triples without explicit "
                "user_ids and item_ids"
            )
        if user_ids is None:
            user_ids = sorted({t[0] for t in triples}, key=repr)
        if item_ids is None:
            item_ids = sorted({t[1] for t in triples}, key=repr)
        user_pos = {label: idx for idx, label in enumerate(user_ids)}
        item_pos = {label: idx for idx, label in enumerate(item_ids)}
        values = np.full((len(user_ids), len(item_ids)), np.nan)
        if not triples:
            return cls(values, user_ids=user_ids, item_ids=item_ids, scale=scale)
        # Label lookups stream through fromiter at C speed (-1 marks an
        # unknown label); duplicate detection and the scatter are vectorised.
        count = len(triples)
        rows = np.fromiter(
            (user_pos.get(t[0], -1) for t in triples), dtype=np.int64, count=count
        )
        cols = np.fromiter(
            (item_pos.get(t[1], -1) for t in triples), dtype=np.int64, count=count
        )
        vals = np.fromiter((t[2] for t in triples), dtype=np.float64, count=count)
        if (rows < 0).any():
            offender = triples[int(np.flatnonzero(rows < 0)[0])][0]
            raise RatingDataError(f"unknown user label {offender!r} in triples")
        if (cols < 0).any():
            offender = triples[int(np.flatnonzero(cols < 0)[0])][1]
            raise RatingDataError(f"unknown item label {offender!r} in triples")
        order = np.lexsort((cols, rows))
        srt_rows, srt_cols, srt_vals = rows[order], cols[order], vals[order]
        duplicate = (srt_rows[1:] == srt_rows[:-1]) & (srt_cols[1:] == srt_cols[:-1])
        # The stable lexsort keeps same-cell triples in stream order, so this
        # reproduces the historical sequential rule exactly: a NaN already in
        # the cell means "unset" and may be overwritten by anything (including
        # another NaN), while a set value conflicts with any different
        # successor (NaN included, since NaN != value).
        conflict = duplicate & ~np.isnan(srt_vals[:-1]) & (srt_vals[1:] != srt_vals[:-1])
        if conflict.any():
            where = int(np.flatnonzero(conflict)[0])
            user, item, _ = triples[int(order[where])]
            raise RatingDataError(
                f"conflicting ratings for user {user!r}, item {item!r}: "
                f"{srt_vals[where]} vs {srt_vals[where + 1]}"
            )
        values[rows, cols] = vals
        return cls(values, user_ids=user_ids, item_ids=item_ids, scale=scale)

    def copy(self) -> "RatingMatrix":
        """Deep copy of the matrix."""
        return RatingMatrix(
            self._values, user_ids=self.user_ids, item_ids=self.item_ids, scale=self.scale
        )

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #

    @property
    def values(self) -> np.ndarray:
        """The underlying ``(n_users, n_items)`` float array (not a copy)."""
        return self._values

    @property
    def n_users(self) -> int:
        """Number of users (rows)."""
        return self._values.shape[0]

    @property
    def n_items(self) -> int:
        """Number of items (columns)."""
        return self._values.shape[1]

    @property
    def shape(self) -> tuple[int, int]:
        """``(n_users, n_items)``."""
        return self._values.shape

    @property
    def known_mask(self) -> np.ndarray:
        """Boolean mask of observed (non-missing) entries."""
        return ~np.isnan(self._values)

    @property
    def num_ratings(self) -> int:
        """Number of observed ratings."""
        return int(self.known_mask.sum())

    @property
    def density(self) -> float:
        """Fraction of observed entries."""
        return self.num_ratings / (self.n_users * self.n_items)

    @property
    def is_complete(self) -> bool:
        """``True`` when every entry is observed (required by group formation)."""
        return bool(self.known_mask.all())

    def user_index(self, user_label: Hashable) -> int:
        """Positional index of ``user_label``."""
        try:
            return self._user_index[user_label]
        except KeyError as exc:
            raise KeyError(f"unknown user label {user_label!r}") from exc

    def item_index(self, item_label: Hashable) -> int:
        """Positional index of ``item_label``."""
        try:
            return self._item_index[item_label]
        except KeyError as exc:
            raise KeyError(f"unknown item label {item_label!r}") from exc

    def rating(self, user: int, item: int) -> float:
        """Rating of positional ``user`` for positional ``item`` (may be ``NaN``)."""
        return float(self._values[user, item])

    def user_ratings(self, user: int) -> np.ndarray:
        """Copy of the rating row for positional index ``user``."""
        return self._values[user].copy()

    def item_ratings(self, item: int) -> np.ndarray:
        """Copy of the rating column for positional index ``item``."""
        return self._values[:, item].copy()

    def to_triples(self) -> list[tuple[Hashable, Hashable, float]]:
        """Observed entries as ``(user_label, item_label, rating)`` triples."""
        rows, cols = np.nonzero(self.known_mask)
        return [
            (self.user_ids[r], self.item_ids[c], float(self._values[r, c]))
            for r, c in zip(rows.tolist(), cols.tolist())
        ]

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #

    def global_mean(self) -> float:
        """Mean of all observed ratings."""
        if self.num_ratings == 0:
            raise RatingDataError("cannot compute the mean of an empty rating matrix")
        return float(np.nanmean(self._values))

    def _axis_means(self, axis: int) -> np.ndarray:
        """Observed-rating means along ``axis`` with the global mean as fallback."""
        mask = self.known_mask
        counts = mask.sum(axis=axis)
        sums = np.where(mask, self._values, 0.0).sum(axis=axis)
        fallback = self.global_mean()
        return np.where(counts > 0, sums / np.maximum(counts, 1), fallback)

    def user_means(self) -> np.ndarray:
        """Per-user mean of observed ratings (global mean for rating-less users)."""
        return self._axis_means(axis=1)

    def item_means(self) -> np.ndarray:
        """Per-item mean of observed ratings (global mean for unrated items)."""
        return self._axis_means(axis=0)

    def ratings_per_user(self) -> np.ndarray:
        """Number of observed ratings per user."""
        return self.known_mask.sum(axis=1)

    def ratings_per_item(self) -> np.ndarray:
        """Number of observed ratings per item."""
        return self.known_mask.sum(axis=0)

    def summary(self) -> dict[str, float]:
        """Dataset statistics in the shape of the paper's Table 3."""
        return {
            "n_users": float(self.n_users),
            "n_items": float(self.n_items),
            "n_ratings": float(self.num_ratings),
            "density": float(self.density),
            "mean_rating": float(self.global_mean()) if self.num_ratings else float("nan"),
            "min_ratings_per_user": float(self.ratings_per_user().min()),
            "min_ratings_per_item": float(self.ratings_per_item().min()),
        }

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #

    def subset(
        self,
        user_indices: Sequence[int] | np.ndarray | None = None,
        item_indices: Sequence[int] | np.ndarray | None = None,
    ) -> "RatingMatrix":
        """Sub-matrix restricted to the given positional user/item indices."""
        users = (
            np.arange(self.n_users)
            if user_indices is None
            else np.asarray(user_indices, dtype=int)
        )
        items = (
            np.arange(self.n_items)
            if item_indices is None
            else np.asarray(item_indices, dtype=int)
        )
        if users.size == 0 or items.size == 0:
            raise RatingDataError("subset must keep at least one user and one item")
        values = self._values[np.ix_(users, items)]
        return RatingMatrix(
            values,
            user_ids=[self.user_ids[u] for u in users.tolist()],
            item_ids=[self.item_ids[i] for i in items.tolist()],
            scale=self.scale,
        )

    def sample(
        self,
        n_users: int | None = None,
        n_items: int | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> "RatingMatrix":
        """Random sub-sample of users and/or items (without replacement).

        Mirrors the paper's experimental setup, e.g. "We randomly select 200
        users and 100 items" for the quality experiments.
        """
        from repro.utils.rng import ensure_rng

        generator = ensure_rng(rng)
        user_indices = None
        item_indices = None
        if n_users is not None:
            if n_users > self.n_users:
                raise RatingDataError(
                    f"cannot sample {n_users} users from {self.n_users}"
                )
            user_indices = np.sort(
                generator.choice(self.n_users, size=n_users, replace=False)
            )
        if n_items is not None:
            if n_items > self.n_items:
                raise RatingDataError(
                    f"cannot sample {n_items} items from {self.n_items}"
                )
            item_indices = np.sort(
                generator.choice(self.n_items, size=n_items, replace=False)
            )
        return self.subset(user_indices, item_indices)

    def trim(
        self, min_ratings_per_user: int = 20, min_ratings_per_item: int = 20
    ) -> "RatingMatrix":
        """Iteratively drop users/items with too few ratings.

        Reproduces the paper's pre-processing of the Yahoo! Music snapshot:
        "each user has rated at least 20 songs, and each song has been rated
        by at least 20 users".  Trimming repeats until a fixed point because
        dropping items can push users back below the threshold and vice versa.
        """
        users = np.arange(self.n_users)
        items = np.arange(self.n_items)
        values = self._values
        while True:
            mask = ~np.isnan(values)
            user_counts = mask.sum(axis=1)
            item_counts = mask.sum(axis=0)
            keep_users = user_counts >= min_ratings_per_user
            keep_items = item_counts >= min_ratings_per_item
            if keep_users.all() and keep_items.all():
                break
            if not keep_users.any() or not keep_items.any():
                raise RatingDataError(
                    "trimming removed every user or item; thresholds "
                    f"({min_ratings_per_user}, {min_ratings_per_item}) are too strict"
                )
            users = users[keep_users]
            items = items[keep_items]
            values = values[np.ix_(keep_users.nonzero()[0], keep_items.nonzero()[0])]
        return RatingMatrix(
            values,
            user_ids=[self.user_ids[u] for u in users.tolist()],
            item_ids=[self.item_ids[i] for i in items.tolist()],
            scale=self.scale,
        )

    def with_values(self, values: np.ndarray) -> "RatingMatrix":
        """New matrix with the same labels/scale but different ``values``."""
        if values.shape != self.shape:
            raise RatingDataError(
                f"replacement values must have shape {self.shape}, got {values.shape}"
            )
        return RatingMatrix(
            values, user_ids=self.user_ids, item_ids=self.item_ids, scale=self.scale
        )

    def mask_random(
        self, fraction: float, rng: np.random.Generator | int | None = None
    ) -> tuple["RatingMatrix", list[tuple[int, int, float]]]:
        """Hide a random ``fraction`` of observed entries (for CF evaluation).

        Returns the masked matrix and the list of hidden ``(user, item,
        rating)`` positional triples, which become the test set.
        """
        from repro.utils.rng import ensure_rng

        if not 0.0 < fraction < 1.0:
            raise ValueError(f"fraction must be in (0, 1), got {fraction}")
        generator = ensure_rng(rng)
        rows, cols = np.nonzero(self.known_mask)
        n_hide = max(1, int(round(fraction * rows.size)))
        chosen = generator.choice(rows.size, size=n_hide, replace=False)
        values = self._values.copy()
        hidden: list[tuple[int, int, float]] = []
        for idx in chosen:
            r, c = int(rows[idx]), int(cols[idx])
            hidden.append((r, c, float(values[r, c])))
            values[r, c] = np.nan
        return self.with_values(values), hidden

    # ------------------------------------------------------------------ #
    # Dunder methods
    # ------------------------------------------------------------------ #

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RatingMatrix(n_users={self.n_users}, n_items={self.n_items}, "
            f"density={self.density:.3f}, scale=[{self.scale.minimum}, "
            f"{self.scale.maximum}])"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RatingMatrix):
            return NotImplemented
        return (
            self.user_ids == other.user_ids
            and self.item_ids == other.item_ids
            and self.scale == other.scale
            and np.array_equal(self._values, other._values, equal_nan=True)
        )
