"""Atomic store + index snapshots for the durable ingestion pipeline.

A snapshot is one compressed ``.npz`` holding everything recovery needs to
reconstruct a :class:`~repro.core.MutableTopKIndex` and its backing
:class:`~repro.recsys.store.MutableRatingStore` exactly as they were:

* the store payload (dense values, or CSR ``data``/``indices``/``indptr``
  plus ``fill_value``) and its rating scale,
* the index tables (``items``/``values``/``n_items``) — saved rather than
  rebuilt so recovery adopts the *incrementally repaired* tables and stays
  bit-identical without re-ranking a single row,
* the index bookkeeping (``version``, ``staleness``, tombstoned users),
* ``applied_seq`` — the newest WAL sequence number folded into this state,
  which is where replay resumes.

Files are named ``snapshot-%016d.npz`` by ``applied_seq`` and written with
the same atomic idiom as :class:`~repro.execution.cache.ArtifactCache`:
serialise to a temp file in the same directory, fsync, then ``os.replace``
— a crash mid-save leaves at most an ignorable ``*.tmp``, never a torn
snapshot.  :meth:`SnapshotManager.load_latest` additionally skips snapshots
that fail to parse, so a torn file from a pre-fsync crash degrades to the
previous snapshot plus a longer replay, not a failed recovery.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import TYPE_CHECKING
from zipfile import BadZipFile

import numpy as np
from scipy import sparse as sp

from repro.core.errors import IngestError
from repro.core.topk_index import MutableTopKIndex
from repro.faults import fire as fault_fire
from repro.recsys.matrix import RatingScale
from repro.recsys.store import DenseStore, SparseStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.recsys.store import MutableRatingStore

__all__ = ["SnapshotManager", "SnapshotState"]


class SnapshotState:
    """One loaded snapshot: the reconstructed store/index plus metadata.

    Attributes
    ----------
    store:
        The reconstructed mutable rating store.
    index_items, index_values:
        The saved top-k tables (adopted via the index's ``base=`` path).
    version:
        Index version at snapshot time.
    staleness:
        Rows repaired since the index's last full build.
    removed:
        Tombstoned user indices.
    applied_seq:
        Newest WAL sequence folded into this state (replay resumes after).
    """

    def __init__(
        self,
        store: "MutableRatingStore",
        index_items: np.ndarray,
        index_values: np.ndarray,
        version: int,
        staleness: int,
        removed: np.ndarray,
        applied_seq: int,
    ) -> None:
        self.store = store
        self.index_items = index_items
        self.index_values = index_values
        self.version = int(version)
        self.staleness = int(staleness)
        self.removed = np.asarray(removed, dtype=np.int64)
        self.applied_seq = int(applied_seq)

    @property
    def k_max(self) -> int:
        """The snapshot index's prefix width."""
        return int(self.index_items.shape[1])


class SnapshotManager:
    """Writes, prunes and loads the snapshot files of one WAL directory.

    Parameters
    ----------
    directory:
        Snapshot directory (created if missing); usually a subdirectory of
        the WAL directory so durability state travels as one tree.
    retain:
        Keep at most this many snapshots (oldest pruned first, default 4).
        Retention below 1 is rejected — recovery always needs one.

    Examples
    --------
    >>> import tempfile, numpy as np
    >>> from repro.core.topk_index import MutableTopKIndex
    >>> from repro.recsys.store import DenseStore
    >>> store = DenseStore(np.array([[5.0, 1.0], [2.0, 4.0]]))
    >>> index = MutableTopKIndex(store, k_max=2)
    >>> with tempfile.TemporaryDirectory() as tmp:
    ...     manager = SnapshotManager(tmp)
    ...     path = manager.save(index, applied_seq=7)
    ...     state = manager.load_latest()
    >>> (state.applied_seq, state.store.to_dense().tolist() == store.to_dense().tolist())
    (7, True)
    """

    def __init__(self, directory: "str | Path", retain: int = 4) -> None:
        self.directory = Path(directory)
        if self.directory.exists() and not self.directory.is_dir():
            raise IngestError(f"snapshot path {self.directory} is not a directory")
        self.directory.mkdir(parents=True, exist_ok=True)
        if retain < 1:
            raise IngestError(f"retain must be >= 1, got {retain}")
        self.retain = int(retain)
        self._clean_strays()

    def _clean_strays(self) -> None:
        """Remove ``*.tmp`` leftovers from a crash inside the save window.

        A process that dies between serialising the temp file and the
        atomic ``os.replace`` leaves exactly one stray; sweeping at open
        keeps the directory's invariant (only ``snapshot-*.npz`` entries)
        without ever touching a completed snapshot.
        """
        for stray in self.directory.glob("*.tmp"):
            try:
                stray.unlink()
            except OSError:  # pragma: no cover - racing another cleaner
                pass

    def _paths(self) -> list[Path]:
        """Existing snapshot paths, oldest first."""
        return sorted(self.directory.glob("snapshot-*.npz"))

    # ------------------------------------------------------------------ #
    # Save
    # ------------------------------------------------------------------ #

    def save(self, index: MutableTopKIndex, applied_seq: int) -> Path:
        """Atomically persist ``index`` (and its store) at ``applied_seq``.

        Parameters
        ----------
        index:
            The live mutable index; its backing store is captured too.
        applied_seq:
            Newest WAL sequence number already applied to the index.

        Returns
        -------
        pathlib.Path
            The snapshot file written.

        Raises
        ------
        IngestError
            When the backing store is neither dense nor CSR-sparse.
        """
        store = index.store
        payload: dict[str, np.ndarray] = {
            "index_items": index.items,
            "index_values": index.values,
            "n_items": np.int64(index.n_items),
            "version": np.int64(index.version),
            "staleness": np.int64(index.staleness),
            "removed": np.asarray(sorted(index.removed), dtype=np.int64),
            "applied_seq": np.int64(applied_seq),
            "scale_min": np.float64(store.scale.minimum),
            "scale_max": np.float64(store.scale.maximum),
        }
        if isinstance(store, DenseStore):
            payload["kind"] = np.bytes_(b"dense")
            payload["dense_values"] = store.values
        elif isinstance(store, SparseStore):
            csr = store.csr
            payload["kind"] = np.bytes_(b"sparse")
            payload["csr_data"] = csr.data
            payload["csr_indices"] = csr.indices
            payload["csr_indptr"] = csr.indptr
            payload["csr_shape"] = np.asarray(csr.shape, dtype=np.int64)
            payload["fill_value"] = np.float64(store.fill_value)
        else:
            raise IngestError(
                f"cannot snapshot store type {type(store).__name__}"
            )
        final = self.directory / f"snapshot-{int(applied_seq):016d}.npz"
        tmp = final.with_suffix(".npz.tmp")
        try:
            fault_fire("snapshot.write")
            with tmp.open("wb") as handle:
                np.savez_compressed(handle, **payload)
                handle.flush()
                os.fsync(handle.fileno())
            fault_fire("snapshot.replace")
            os.replace(tmp, final)
        finally:
            if tmp.exists():  # failure cleanup (fault/ENOSPC mid-save)
                tmp.unlink()
        dir_fd = os.open(self.directory, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
        self._prune()
        return final

    def _prune(self) -> None:
        """Delete the oldest snapshots beyond the retention budget.

        Best-effort: a failed unlink only delays reclamation (the next
        prune retries) and must never fail the snapshot that was just
        written durably.
        """
        paths = self._paths()
        for path in paths[: max(0, len(paths) - self.retain)]:
            try:
                fault_fire("snapshot.prune")
                path.unlink()
            except OSError:
                continue

    # ------------------------------------------------------------------ #
    # Load
    # ------------------------------------------------------------------ #

    def latest_info(self) -> tuple[int, float] | None:
        """``(applied_seq, mtime)`` of the newest snapshot on disk.

        Returns ``None`` for an empty directory.  Used to seed the
        durability-lag readout (`/v1/healthz`) after recovery without
        parsing the snapshot payload.
        """
        paths = self._paths()
        if not paths:
            return None
        newest = paths[-1]
        try:
            mtime = newest.stat().st_mtime
        except OSError:  # pragma: no cover - racing an external prune
            return None
        return int(newest.stem.split("-", 1)[1]), float(mtime)

    def oldest_retained_seq(self) -> int | None:
        """``applied_seq`` of the oldest snapshot on disk (None when empty).

        The WAL may truncate every segment fully covered by this sequence
        — earlier records can never be needed again.
        """
        paths = self._paths()
        if not paths:
            return None
        return int(paths[0].stem.split("-", 1)[1])

    @staticmethod
    def _load_one(path: Path) -> SnapshotState:
        """Parse one snapshot file into a :class:`SnapshotState`."""
        with np.load(path) as data:
            kind = bytes(data["kind"]).decode("ascii")
            scale = RatingScale(float(data["scale_min"]), float(data["scale_max"]))
            if kind == "dense":
                store: "MutableRatingStore" = DenseStore(
                    np.array(data["dense_values"]), scale=scale, validate=False
                )
            elif kind == "sparse":
                shape = tuple(int(v) for v in data["csr_shape"])
                csr = sp.csr_matrix(
                    (
                        np.array(data["csr_data"]),
                        np.array(data["csr_indices"]),
                        np.array(data["csr_indptr"]),
                    ),
                    shape=shape,
                )
                store = SparseStore(
                    csr, fill_value=float(data["fill_value"]), scale=scale
                )
            else:  # pragma: no cover - forward-compat guard
                raise IngestError(f"unknown snapshot store kind {kind!r}")
            return SnapshotState(
                store=store,
                index_items=np.array(data["index_items"]),
                index_values=np.array(data["index_values"]),
                version=int(data["version"]),
                staleness=int(data["staleness"]),
                removed=np.array(data["removed"]),
                applied_seq=int(data["applied_seq"]),
            )

    def load_latest(self) -> SnapshotState | None:
        """Load the newest readable snapshot (None when the directory is empty).

        A snapshot that fails to parse — e.g. torn by a crash before its
        fsync — is skipped in favour of the next-older one, trading replay
        length for robustness.
        """
        for path in reversed(self._paths()):
            try:
                return self._load_one(path)
            except (OSError, KeyError, ValueError, BadZipFile):
                continue
        return None

    def load(self, applied_seq: int) -> SnapshotState:
        """Load the snapshot taken exactly at ``applied_seq``.

        Parameters
        ----------
        applied_seq:
            The sequence number in the snapshot's filename.

        Raises
        ------
        IngestError
            When no such snapshot exists.
        """
        path = self.directory / f"snapshot-{int(applied_seq):016d}.npz"
        if not path.exists():
            raise IngestError(f"no snapshot at applied_seq={applied_seq}")
        return self._load_one(path)
