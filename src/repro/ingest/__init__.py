"""Durable streaming ingestion: typed events, WAL, snapshots, recovery.

This package makes the online serving layer (:mod:`repro.service`)
survive crashes.  The pieces, bottom-up:

* :mod:`repro.ingest.events` — the typed feedback-event vocabulary
  (explicit ratings, deletes, clicks, completions) and the deterministic
  fold onto store upserts/deletes.
* :mod:`repro.ingest.wal` — an append-only, checksummed, fsync-batched
  write-ahead log; every accepted batch is journaled *before* it is
  applied.
* :mod:`repro.ingest.snapshot` — atomic store + index checkpoints that
  bound replay time and let the log truncate.
* :mod:`repro.ingest.pipeline` — :class:`IngestPipeline`, which wires
  the above around a live service and implements crash recovery: latest
  snapshot + WAL-tail replay reproduces the pre-crash store and index
  **bit for bit**.

See the "Durability" section of ``docs/architecture.md`` for the record
format, snapshot cadence and recovery invariant.
"""

from repro.ingest.events import (
    Click,
    Completion,
    Event,
    ExplicitRating,
    FoldPolicy,
    RatingDelete,
    event_from_dict,
    fold_events,
)
from repro.ingest.pipeline import IngestPipeline
from repro.ingest.snapshot import SnapshotManager, SnapshotState
from repro.ingest.wal import WriteAheadLog

__all__ = [
    "Click",
    "Completion",
    "Event",
    "ExplicitRating",
    "FoldPolicy",
    "IngestPipeline",
    "RatingDelete",
    "SnapshotManager",
    "SnapshotState",
    "WriteAheadLog",
    "event_from_dict",
    "fold_events",
]
