"""Typed feedback events and their folding onto store updates.

The online service historically accepted raw matrix writes — bare
``(user, item, rating)`` triples.  Real traffic is richer: explicit star
ratings, rating retractions, and *implicit* signals (clicks, completions)
that carry no score of their own.  This module defines the typed event
vocabulary of the v1 ingest API and the single documented mapping from an
ordered event batch onto the ``(upserts, deletes)`` pairs that
:meth:`repro.core.MutableTopKIndex.apply` consumes:

* :class:`ExplicitRating` — an explicit score; **last-wins** per
  ``(user, item)`` cell within a batch.
* :class:`RatingDelete` — retracts a cell back to the store's fill value;
  participates in the same last-wins ordering as explicit ratings.
* :class:`Click` / :class:`Completion` — implicit signals folded to a
  score by a pluggable :class:`FoldPolicy`.  An implicit event only
  touches a cell when no *explicit* event in the same batch addressed it
  (explicit feedback always outranks inferred scores); among implicit
  events on the same cell, the last one wins.

:func:`fold_events` implements that mapping deterministically: the
resulting ``(upserts, deletes)`` lists are ordered by first touch of each
cell, so folding is a pure function of the event sequence.  The write-ahead
log (:mod:`repro.ingest.wal`) journals the *folded* operations, which keeps
replay independent of policy evolution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Union

from repro.core.errors import IngestError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from collections.abc import Iterable, Sequence

    from repro.recsys.matrix import RatingScale

__all__ = [
    "Click",
    "Completion",
    "Event",
    "ExplicitRating",
    "FoldPolicy",
    "RatingDelete",
    "event_from_dict",
    "fold_events",
]


def _check_coords(kind: str, user: object, item: object) -> tuple[int, int]:
    """Validate ``(user, item)`` as non-negative integers.

    Parameters
    ----------
    kind:
        Event type name used in error messages.
    user, item:
        Raw coordinates from the caller (ints, or floats from JSON).

    Returns
    -------
    tuple
        The coordinates as plain ``int``.

    Raises
    ------
    IngestError
        On booleans, fractional floats, or negative values.
    """
    coords = []
    for name, value in (("user", user), ("item", item)):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise IngestError(f"{kind}.{name} must be an integer, got {value!r}")
        if isinstance(value, float) and not value.is_integer():
            raise IngestError(f"{kind}.{name} must be an integer, got {value!r}")
        value = int(value)
        if value < 0:
            raise IngestError(f"{kind}.{name} must be >= 0, got {value}")
        coords.append(value)
    return coords[0], coords[1]


def _check_number(kind: str, name: str, value: object) -> float:
    """Validate a finite numeric field and return it as ``float``."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise IngestError(f"{kind}.{name} must be a number, got {value!r}")
    value = float(value)
    if value != value or value in (float("inf"), float("-inf")):
        raise IngestError(f"{kind}.{name} must be finite, got {value!r}")
    return value


@dataclass(frozen=True)
class ExplicitRating:
    """A user explicitly scored an item.

    Attributes
    ----------
    user:
        User row index.
    item:
        Item column index.
    score:
        The rating; must be finite (scale membership is enforced by the
        store at apply time, so one validation path serves every entry
        point).
    """

    user: int
    item: int
    score: float

    kind = "rating"

    def __post_init__(self) -> None:
        user, item = _check_coords(self.kind, self.user, self.item)
        object.__setattr__(self, "user", user)
        object.__setattr__(self, "item", item)
        object.__setattr__(
            self, "score", _check_number(self.kind, "score", self.score)
        )

    def as_dict(self) -> dict:
        """JSON-serialisable representation (round-trips via :func:`event_from_dict`)."""
        return {"kind": self.kind, "user": self.user, "item": self.item,
                "score": self.score}


@dataclass(frozen=True)
class RatingDelete:
    """A user retracted their rating for an item.

    The cell reverts to the store's fill value.  Deleting a cell that was
    never rated is a valid no-op (idempotent retraction).

    Attributes
    ----------
    user:
        User row index.
    item:
        Item column index.
    """

    user: int
    item: int

    kind = "delete"

    def __post_init__(self) -> None:
        user, item = _check_coords(self.kind, self.user, self.item)
        object.__setattr__(self, "user", user)
        object.__setattr__(self, "item", item)

    def as_dict(self) -> dict:
        """JSON-serialisable representation (round-trips via :func:`event_from_dict`)."""
        return {"kind": self.kind, "user": self.user, "item": self.item}


@dataclass(frozen=True)
class Click:
    """An implicit signal: the user clicked/selected an item.

    Folded to a score by :meth:`FoldPolicy.score`.

    Attributes
    ----------
    user:
        User row index.
    item:
        Item column index.
    """

    user: int
    item: int

    kind = "click"

    def __post_init__(self) -> None:
        user, item = _check_coords(self.kind, self.user, self.item)
        object.__setattr__(self, "user", user)
        object.__setattr__(self, "item", item)

    def as_dict(self) -> dict:
        """JSON-serialisable representation (round-trips via :func:`event_from_dict`)."""
        return {"kind": self.kind, "user": self.user, "item": self.item}


@dataclass(frozen=True)
class Completion:
    """An implicit signal: the user consumed ``progress`` of an item.

    Attributes
    ----------
    user:
        User row index.
    item:
        Item column index.
    progress:
        Fraction consumed, in ``[0, 1]``.
    """

    user: int
    item: int
    progress: float

    kind = "completion"

    def __post_init__(self) -> None:
        user, item = _check_coords(self.kind, self.user, self.item)
        object.__setattr__(self, "user", user)
        object.__setattr__(self, "item", item)
        progress = _check_number(self.kind, "progress", self.progress)
        if not 0.0 <= progress <= 1.0:
            raise IngestError(
                f"completion.progress must be in [0, 1], got {progress}"
            )
        object.__setattr__(self, "progress", progress)

    def as_dict(self) -> dict:
        """JSON-serialisable representation (round-trips via :func:`event_from_dict`)."""
        return {"kind": self.kind, "user": self.user, "item": self.item,
                "progress": self.progress}


#: Union of every event type accepted by the v1 ingest surface.
Event = Union[ExplicitRating, RatingDelete, Click, Completion]

_EVENT_KINDS: dict[str, type] = {
    cls.kind: cls for cls in (ExplicitRating, RatingDelete, Click, Completion)
}

_EVENT_FIELDS: dict[str, tuple[str, ...]] = {
    "rating": ("user", "item", "score"),
    "delete": ("user", "item"),
    "click": ("user", "item"),
    "completion": ("user", "item", "progress"),
}


def event_from_dict(payload: object) -> Event:
    """Parse one JSON-decoded event object into its typed dataclass.

    Parameters
    ----------
    payload:
        A mapping with a ``"kind"`` discriminator plus that kind's fields
        (exactly what :meth:`ExplicitRating.as_dict` and friends emit).

    Returns
    -------
    Event
        The validated typed event.

    Raises
    ------
    IngestError
        On non-mapping payloads, unknown kinds, or missing/extra fields.

    Examples
    --------
    >>> event_from_dict({"kind": "rating", "user": 0, "item": 2, "score": 4.0})
    ExplicitRating(user=0, item=2, score=4.0)
    """
    if not isinstance(payload, dict):
        raise IngestError(f"event must be an object, got {type(payload).__name__}")
    kind = payload.get("kind")
    cls = _EVENT_KINDS.get(kind)
    if cls is None:
        raise IngestError(
            f"unknown event kind {kind!r}; expected one of "
            f"{sorted(_EVENT_KINDS)}"
        )
    fields = _EVENT_FIELDS[kind]
    extra = set(payload) - set(fields) - {"kind"}
    if extra:
        raise IngestError(f"{kind} event has unknown fields {sorted(extra)}")
    missing = [name for name in fields if name not in payload]
    if missing:
        raise IngestError(f"{kind} event is missing fields {missing}")
    return cls(**{name: payload[name] for name in fields})


@dataclass(frozen=True)
class FoldPolicy:
    """How implicit signals fold to scores on the store's rating scale.

    The defaults express the usual implicit-feedback prior: a click is a
    weak positive (half-way up the scale by default), a completion scales
    linearly with consumed fraction.  Scores are clipped into the scale.

    Attributes
    ----------
    click_weight:
        Position of a click on the scale's span, in ``[0, 1]``
        (``0.5`` → the scale midpoint).
    """

    click_weight: float = 0.5

    def __post_init__(self) -> None:
        weight = _check_number("policy", "click_weight", self.click_weight)
        if not 0.0 <= weight <= 1.0:
            raise IngestError(
                f"policy.click_weight must be in [0, 1], got {weight}"
            )
        object.__setattr__(self, "click_weight", weight)

    def score(self, event: Event, scale: "RatingScale") -> float:
        """The folded score of one implicit ``event`` on ``scale``.

        Parameters
        ----------
        event:
            A :class:`Click` or :class:`Completion`.
        scale:
            The store's rating scale.
        """
        if isinstance(event, Click):
            raw = scale.minimum + self.click_weight * scale.spread
        elif isinstance(event, Completion):
            raw = scale.minimum + event.progress * scale.spread
        else:
            raise IngestError(
                f"policy cannot fold explicit event kind {event.kind!r}"
            )
        return float(scale.clip(raw))


def fold_events(
    events: "Iterable[Event]",
    scale: "RatingScale",
    policy: FoldPolicy | None = None,
) -> tuple[list[tuple[int, int, float]], list[tuple[int, int]]]:
    """Fold an ordered event sequence into one store-update batch.

    Resolution is per ``(user, item)`` cell: explicit operations
    (:class:`ExplicitRating`, :class:`RatingDelete`) are strictly
    last-wins among themselves; implicit events only take effect on cells
    with *no* explicit operation in the batch, last-wins among implicit.
    The returned lists are ordered by first touch of each cell, making the
    fold a deterministic function of the event order — this is what lets
    WAL replay reproduce a live process bit for bit.

    Parameters
    ----------
    events:
        Typed events, in arrival order.
    scale:
        The target store's rating scale (implicit folding needs the span).
    policy:
        Implicit-folding policy (default :class:`FoldPolicy()`).

    Returns
    -------
    tuple
        ``(upserts, deletes)`` — disjoint ``(user, item, score)`` triples
        and ``(user, item)`` pairs ready for
        :meth:`repro.core.MutableTopKIndex.apply`.

    Examples
    --------
    >>> from repro.recsys.matrix import RatingScale
    >>> fold_events(
    ...     [ExplicitRating(0, 1, 5.0), RatingDelete(0, 1),
    ...      ExplicitRating(0, 1, 2.0)],
    ...     RatingScale(),
    ... )
    ([(0, 1, 2.0)], [])
    """
    if policy is None:
        policy = FoldPolicy()
    explicit: dict[tuple[int, int], float | None] = {}
    implicit: dict[tuple[int, int], float] = {}
    for event in events:
        if not isinstance(event, _EVENT_TYPES):
            raise IngestError(
                f"expected a typed event, got {type(event).__name__}"
            )
        cell = (event.user, event.item)
        if isinstance(event, ExplicitRating):
            explicit[cell] = event.score
        elif isinstance(event, RatingDelete):
            explicit[cell] = None
        else:
            implicit[cell] = policy.score(event, scale)
    upserts: list[tuple[int, int, float]] = []
    deletes: list[tuple[int, int]] = []
    for cell, score in explicit.items():
        if score is None:
            deletes.append(cell)
        else:
            upserts.append((cell[0], cell[1], score))
    for cell, score in implicit.items():
        if cell not in explicit:
            upserts.append((cell[0], cell[1], score))
    return upserts, deletes


_EVENT_TYPES = (ExplicitRating, RatingDelete, Click, Completion)
