"""The durable ingestion pipeline: events → WAL → service → snapshots.

:class:`IngestPipeline` ties the pieces of :mod:`repro.ingest` around a
live :class:`~repro.service.FormationService`:

* :meth:`IngestPipeline.ingest` folds a typed event batch
  (:func:`repro.ingest.events.fold_events`) and applies it through the
  service.  The service's attached journal appends the folded batch to
  the :class:`~repro.ingest.wal.WriteAheadLog` *before* any state
  changes, so an acknowledged batch survives a crash.
* every ``snapshot_every`` applied batches (and on demand via
  :meth:`snapshot`) the store + index are checkpointed through
  :class:`~repro.ingest.snapshot.SnapshotManager`; the WAL is rotated
  and segments fully covered by the oldest retained snapshot are
  truncated away, bounding both replay time and disk usage.
* :meth:`IngestPipeline.open` performs crash recovery: load the latest
  snapshot, replay the WAL tail through the exact same
  ``apply_updates`` path a live process used (journaling disabled during
  replay), and hand back a pipeline whose store and index are
  **bit-identical** to a process that applied every logged batch —
  ``tests/ingest/test_recovery.py`` proves the invariant property-based,
  ``tests/ingest/test_crash_recovery.py`` proves it across a real
  ``kill -9``.

A batch that was journaled but then rejected (bad coordinates) fails
atomically and deterministically, so replay skips it exactly as the live
process did — the invariant is over *logged* batches, not accepted HTTP
requests.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.core.errors import IngestError, ReproError
from repro.faults import fire as fault_fire
from repro.ingest.events import FoldPolicy, fold_events
from repro.ingest.snapshot import SnapshotManager
from repro.ingest.wal import WriteAheadLog
from repro.obs.registry import (
    G_LAST_SNAPSHOT_TS,
    G_WAL_BACKLOG,
    H_INGEST_APPLY,
    H_SNAPSHOT,
    K_EVENTS_INGESTED,
    K_INGEST_BATCHES,
    K_SNAPSHOTS,
)
from repro.obs.runtime import get_registry, observed

if TYPE_CHECKING:  # pragma: no cover - typing only
    from collections.abc import Callable, Sequence

    from repro.ingest.events import Event
    from repro.ingest.snapshot import SnapshotState
    from repro.service.service import FormationService

__all__ = ["IngestPipeline"]


class IngestPipeline:
    """Durability coordinator for one service + WAL + snapshot directory.

    Build one with :meth:`open` (which performs recovery) rather than the
    constructor — the constructor assumes ``service`` is already in sync
    with the log and attaches the journal immediately.

    Parameters
    ----------
    service:
        The live formation service; its ``journal`` is attached to
        ``wal`` so every applied batch is logged first.
    wal:
        The write-ahead log, already recovered/positioned.
    snapshots:
        The snapshot manager over this pipeline's checkpoint directory.
    snapshot_every:
        Take a snapshot every this many applied batches (``0`` disables
        automatic snapshots; :meth:`snapshot` still works).
    policy:
        Implicit-event folding policy (default :class:`FoldPolicy()`).
    """

    def __init__(
        self,
        service: "FormationService",
        wal: WriteAheadLog,
        snapshots: SnapshotManager,
        snapshot_every: int = 64,
        policy: FoldPolicy | None = None,
    ) -> None:
        if snapshot_every < 0:
            raise IngestError(
                f"snapshot_every must be >= 0, got {snapshot_every}"
            )
        self.service = service
        self.wal = wal
        self.snapshots = snapshots
        self.snapshot_every = int(snapshot_every)
        self.policy = policy if policy is not None else FoldPolicy()
        self._lock = threading.RLock()
        self._batches_since_snapshot = 0
        self.batches_ingested = 0
        self.events_ingested = 0
        self.snapshots_taken = 0
        #: ``(applied_seq, unix mtime)`` of the newest snapshot — seeded
        #: from disk so durability lag is honest right after recovery.
        latest = snapshots.latest_info()
        self.last_snapshot_seq = latest[0] if latest is not None else 0
        self.last_snapshot_at = latest[1] if latest is not None else None
        #: Recovery bookkeeping filled in by :meth:`open` (None otherwise).
        self.recovery: dict[str, Any] | None = None
        service.journal = wal

    # ------------------------------------------------------------------ #
    # Ingest
    # ------------------------------------------------------------------ #

    def ingest(self, events: "Sequence[Event]") -> dict[str, Any]:
        """Fold and durably apply one ordered event batch.

        Parameters
        ----------
        events:
            Typed events in arrival order (see
            :mod:`repro.ingest.events` for the folding contract).

        Returns
        -------
        dict
            The service's batch bookkeeping (including ``wal_seq``) plus
            ``{"events": <count>, "snapshot_taken": <bool>}``.
        """
        with self._lock:
            with observed("ingest.apply", H_INGEST_APPLY):
                fault_fire("pipeline.apply")
                upserts, deletes = fold_events(
                    events, self.service.store.scale, self.policy
                )
                stats = self.service.apply_updates(upserts=upserts, deletes=deletes)
            self.batches_ingested += 1
            self.events_ingested += len(events)
            registry = get_registry()
            registry.inc(K_INGEST_BATCHES)
            registry.inc(K_EVENTS_INGESTED, len(events))
            stats["events"] = len(events)
            stats["snapshot_taken"] = self._after_batch()
            return stats

    def apply(self, **batch: Any) -> dict[str, Any]:
        """Durably apply one raw update batch (non-event entry point).

        Forwards ``**batch`` to
        :meth:`~repro.service.FormationService.apply_updates` (so
        ``add_users``/``remove_users`` flows are journaled too) and runs
        the same snapshot cadence as :meth:`ingest`.
        """
        with self._lock:
            with observed("ingest.apply", H_INGEST_APPLY):
                fault_fire("pipeline.apply")
                stats = self.service.apply_updates(**batch)
            self.batches_ingested += 1
            get_registry().inc(K_INGEST_BATCHES)
            stats["snapshot_taken"] = self._after_batch()
            return stats

    def _after_batch(self) -> bool:
        """Advance the snapshot cadence; snapshot when it comes due."""
        self._batches_since_snapshot += 1
        taken = False
        if self.snapshot_every and self._batches_since_snapshot >= self.snapshot_every:
            self.snapshot()
            taken = True
        get_registry().gauge_set(
            G_WAL_BACKLOG, self.wal.last_seq - self.last_snapshot_seq
        )
        return taken

    # ------------------------------------------------------------------ #
    # Durability controls
    # ------------------------------------------------------------------ #

    def snapshot(self) -> dict[str, Any]:
        """Checkpoint now: fsync the WAL, save state, rotate + truncate.

        Returns
        -------
        dict
            ``{"path", "applied_seq", "segments_truncated"}``.
        """
        with self._lock:
            with observed("snapshot", H_SNAPSHOT, counter=K_SNAPSHOTS):
                self.wal.sync()
                applied_seq = self.wal.last_seq
                path = self.snapshots.save(self.service.index, applied_seq)
                self.wal.rotate()
                oldest = self.snapshots.oldest_retained_seq()
                truncated = (
                    self.wal.truncate_through(oldest) if oldest is not None else 0
                )
            self._batches_since_snapshot = 0
            self.snapshots_taken += 1
            self.last_snapshot_seq = applied_seq
            self.last_snapshot_at = time.time()
            registry = get_registry()
            registry.gauge_set(G_LAST_SNAPSHOT_TS, self.last_snapshot_at)
            registry.gauge_set(G_WAL_BACKLOG, 0)
            return {
                "path": str(path),
                "applied_seq": applied_seq,
                "segments_truncated": truncated,
            }

    def sync(self) -> None:
        """fsync any batched-but-unsynced WAL appends (group-commit flush)."""
        self.wal.sync()

    def heal(self) -> None:
        """Probe and repair the durability tree after a write failure.

        The degraded read-only mode's periodic disk probe: delegates to
        :meth:`~repro.ingest.wal.WriteAheadLog.heal`, which truncates any
        unacknowledged tail record and exercises the full
        write+fsync path.  Raises ``OSError`` while the disk still fails
        — the caller stays read-only and probes again later.  On success
        the WAL is positioned exactly at the last acknowledged batch, so
        writes may resume without breaking the recovery bit-identity
        invariant.
        """
        with self._lock:
            self.wal.heal()

    def close(self) -> None:
        """Flush and close the WAL; the service stops journaling."""
        self.wal.close()
        self.service.journal = None

    def stats(self) -> dict[str, Any]:
        """Durability bookkeeping for monitoring/tests."""
        with self._lock:
            return {
                "wal_last_seq": self.wal.last_seq,
                "wal_syncs": self.wal.syncs,
                "batches_ingested": self.batches_ingested,
                "events_ingested": self.events_ingested,
                "snapshots_taken": self.snapshots_taken,
                "snapshot_every": self.snapshot_every,
                "batches_since_snapshot": self._batches_since_snapshot,
            }

    def durability(self) -> dict[str, Any]:
        """Durability-lag readout surfaced by ``/v1/healthz``.

        Returns
        -------
        dict
            ``wal_backlog`` (records appended since the last snapshot),
            ``last_snapshot_seq``, ``last_snapshot_age_seconds`` (``None``
            before any snapshot exists) and ``last_fsync_seconds`` (0.0
            before the first fsync) — the three numbers that grow when
            recovery time is silently blowing up.
        """
        with self._lock:
            age = (
                max(0.0, round(time.time() - self.last_snapshot_at, 3))
                if self.last_snapshot_at is not None
                else None
            )
            backlog = self.wal.last_seq - self.last_snapshot_seq
            get_registry().gauge_set(G_WAL_BACKLOG, float(backlog))
            return {
                "wal_backlog": backlog,
                "last_snapshot_seq": self.last_snapshot_seq,
                "last_snapshot_age_seconds": age,
                "last_fsync_seconds": round(self.wal.last_sync_seconds, 6),
            }

    # ------------------------------------------------------------------ #
    # Recovery
    # ------------------------------------------------------------------ #

    @staticmethod
    def replay_record(service: "FormationService", record: dict) -> bool:
        """Re-apply one journaled batch to ``service`` (journal detached).

        Parameters
        ----------
        service:
            The service being recovered (must have no journal attached).
        record:
            A WAL record as written by
            ``FormationService._journal_record``.

        Returns
        -------
        bool
            ``True`` when the batch applied; ``False`` when it was
            rejected — deterministic validation means the live process
            rejected it identically, so skipping preserves bit-identity.
        """
        add_users = record.get("add_users")
        try:
            service.apply_updates(
                upserts=[tuple(u) for u in record.get("upserts", [])],
                deletes=[tuple(d) for d in record.get("deletes", [])],
                add_users=(
                    np.asarray(add_users, dtype=np.float64)
                    if add_users is not None
                    else None
                ),
                remove_users=record.get("remove_users"),
            )
        except ReproError:
            return False
        return True

    @classmethod
    def open(
        cls,
        directory: "str | Path",
        service_factory: "Callable[[SnapshotState | None], FormationService]",
        snapshot_every: int = 64,
        sync_every: int = 1,
        retain: int = 4,
        policy: FoldPolicy | None = None,
    ) -> "IngestPipeline":
        """Open (or recover) the durable state rooted at ``directory``.

        Layout: ``<directory>/wal/`` holds the log segments,
        ``<directory>/snapshots/`` the checkpoints.  A fresh directory
        gets an immediate baseline snapshot (``applied_seq=0``) so
        recovery always has a floor to replay from.

        Parameters
        ----------
        directory:
            Root of the durability tree (created if missing).
        service_factory:
            ``(SnapshotState | None) -> FormationService`` — called with
            the loaded snapshot (or ``None`` on a fresh directory) and
            expected to return a service whose store/index match it
            exactly (:meth:`repro.service.ServiceConfig.build_service`
            is the canonical implementation).
        snapshot_every, sync_every, retain, policy:
            Forwarded to the pipeline / WAL / snapshot manager.

        Returns
        -------
        IngestPipeline
            With the WAL tail replayed and the journal attached; the
            returned service state is bit-identical to a process that
            applied every logged batch.
        """
        root = Path(directory)
        snapshots = SnapshotManager(root / "snapshots", retain=retain)
        state = snapshots.load_latest()
        service = service_factory(state)
        if service.journal is not None:
            raise IngestError(
                "service_factory must return a service without a journal "
                "attached (recovery must not re-journal the replay)"
            )
        wal = WriteAheadLog(root / "wal", sync_every=sync_every)
        started = time.perf_counter()
        applied = state.applied_seq if state is not None else 0
        replayed = skipped = 0
        for _seq, record in wal.replay(after=applied):
            if cls.replay_record(service, record):
                replayed += 1
            else:
                skipped += 1
        pipeline = cls(
            service,
            wal,
            snapshots,
            snapshot_every=snapshot_every,
            policy=policy,
        )
        pipeline.recovery = {
            "snapshot_seq": applied,
            "wal_last_seq": wal.last_seq,
            "batches_replayed": replayed,
            "batches_skipped": skipped,
            "seconds": time.perf_counter() - started,
        }
        if state is None and wal.last_seq == 0:
            # Fresh directory: baseline checkpoint so there is always a
            # snapshot to recover from (and a floor for WAL truncation).
            pipeline.snapshot()
        return pipeline
