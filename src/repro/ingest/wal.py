"""Append-only, checksummed, fsync-batched write-ahead log.

The durability contract of :mod:`repro.ingest` is classic redo logging:
every accepted update batch is appended (and, at the configured cadence,
fsynced) to the log *before* it is applied to the in-memory store/index.
Recovery then replays the tail after the latest snapshot, and reaches a
state bit-identical to a process that applied every logged batch.

On-disk layout — a directory of fixed-name segments::

    wal-0000000000000001.log      # named by the first sequence they hold
    wal-0000000000000042.log      # the highest-named segment is active

Each segment starts with an 8-byte magic (:data:`_MAGIC`), followed by
records framed as::

    <seq:uint64le> <length:uint32le> <payload:length bytes> <crc32:uint32le>

where the CRC covers header *and* payload.  Sequence numbers are global,
contiguous and start at 1.  A torn or corrupt record can only be the
effect of a crash mid-append, so replay stops cleanly at the first framing
violation and reopening truncates the tail back to the last intact record
— a torn tail is an *unacknowledged* write, never an error.

``sync_every`` batches fsyncs (group commit): the default ``1`` fsyncs on
every append (strongest durability), larger values trade the tail of the
log for throughput.
"""

from __future__ import annotations

import errno
import io
import json
import os
import struct
import time
import zlib
from pathlib import Path
from typing import TYPE_CHECKING

from repro.core.errors import IngestError
from repro.faults import check as fault_check
from repro.faults import execute as fault_execute
from repro.faults import fire as fault_fire
from repro.obs.registry import (
    G_LAST_FSYNC,
    H_WAL_APPEND,
    H_WAL_FSYNC,
    K_WAL_APPENDS,
    K_WAL_FSYNCS,
)
from repro.obs.runtime import get_registry, observed

if TYPE_CHECKING:  # pragma: no cover - typing only
    from collections.abc import Iterator

__all__ = ["WriteAheadLog"]

#: Segment file magic: identifies the format and its version.
_MAGIC = b"RPWAL\x00\x00\x01"
_HEADER = struct.Struct("<QI")  # seq, payload length
_CRC = struct.Struct("<I")
_SEGMENT_GLOB = "wal-*.log"
#: Ceiling on a single record payload (64 MiB) — a length field beyond this
#: is treated as tail corruption rather than attempting a giant read.
_MAX_PAYLOAD = 64 * 1024 * 1024


def _segment_path(directory: Path, first_seq: int) -> Path:
    """The canonical path of the segment whose first record is ``first_seq``."""
    return directory / f"wal-{first_seq:016d}.log"


def _segment_first_seq(path: Path) -> int:
    """Parse a segment filename back into its first sequence number."""
    return int(path.stem.split("-", 1)[1])


def _fsync_dir(directory: Path) -> None:
    """fsync a directory so created/renamed entries are durable."""
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class WriteAheadLog:
    """Append-only redo log over JSON-serialisable batch records.

    Parameters
    ----------
    directory:
        Log directory (created if missing).  One log owns the directory's
        ``wal-*.log`` namespace.
    sync_every:
        fsync after every ``sync_every`` appends (default ``1``; group
        commit for larger values).  :meth:`sync`, :meth:`rotate` and
        :meth:`close` always flush regardless.
    segment_bytes:
        Soft segment-size ceiling; an append that would push the active
        segment past it rotates first (default 16 MiB).

    Raises
    ------
    IngestError
        When the directory path exists but is not a directory, or a
        non-tail segment is unreadable.

    Examples
    --------
    >>> import tempfile
    >>> with tempfile.TemporaryDirectory() as tmp:
    ...     wal = WriteAheadLog(tmp)
    ...     seq = wal.append({"upserts": [[0, 1, 5.0]]})
    ...     wal.close()
    ...     reopened = WriteAheadLog(tmp)
    ...     records = list(reopened.replay())
    ...     reopened.close()
    >>> (seq, records)
    (1, [(1, {'upserts': [[0, 1, 5.0]]})])
    """

    def __init__(
        self,
        directory: "str | Path",
        sync_every: int = 1,
        segment_bytes: int = 16 * 1024 * 1024,
    ) -> None:
        self.directory = Path(directory)
        if self.directory.exists() and not self.directory.is_dir():
            raise IngestError(f"WAL path {self.directory} is not a directory")
        self.directory.mkdir(parents=True, exist_ok=True)
        if sync_every < 1:
            raise IngestError(f"sync_every must be >= 1, got {sync_every}")
        self.sync_every = int(sync_every)
        self.segment_bytes = int(segment_bytes)
        self._handle: io.BufferedWriter | None = None
        self._active: Path | None = None
        self._unsynced = 0
        #: Total fsync calls issued (observable for tests/benchmarks).
        self.syncs = 0
        #: Duration of the most recent fsync, in seconds (0.0 before the
        #: first sync) — surfaced by ``/v1/healthz`` as durability lag.
        self.last_sync_seconds = 0.0
        self._last_seq = 0
        self._recover_segments()
        #: Sequence of the last append acknowledged to a caller.  Recovery
        #: equates it with the scan result; a failed append/fsync leaves
        #: ``_last_seq`` ahead of it until :meth:`heal` truncates back.
        self._acked_seq = self._last_seq

    # ------------------------------------------------------------------ #
    # Open / scan
    # ------------------------------------------------------------------ #

    def _segments(self) -> list[Path]:
        """Existing segment paths, ordered by first sequence number."""
        return sorted(self.directory.glob(_SEGMENT_GLOB), key=_segment_first_seq)

    def _scan_segment(self, path: Path) -> tuple[int, int]:
        """Scan one segment; return ``(last_seq, valid_byte_length)``.

        ``last_seq`` is 0 when the segment holds no intact records.  Stops
        at the first framing/CRC violation — the torn-tail boundary.
        """
        data = path.read_bytes()
        if not data.startswith(_MAGIC):
            raise IngestError(f"{path} is not a WAL segment (bad magic)")
        offset = len(_MAGIC)
        last_seq = 0
        while True:
            header_end = offset + _HEADER.size
            if header_end > len(data):
                break
            seq, length = _HEADER.unpack_from(data, offset)
            record_end = header_end + length + _CRC.size
            if length > _MAX_PAYLOAD or record_end > len(data):
                break
            (crc,) = _CRC.unpack_from(data, header_end + length)
            if zlib.crc32(data[offset : header_end + length]) != crc:
                break
            last_seq = seq
            offset = record_end
        return last_seq, offset

    def _recover_segments(self) -> None:
        """Scan existing segments, truncate any torn tail, open for append."""
        segments = self._segments()
        if not segments:
            return
        # Only the last segment can legitimately hold a torn tail.
        for path in segments[:-1]:
            last_seq, valid = self._scan_segment(path)
            if valid != path.stat().st_size:
                raise IngestError(
                    f"non-tail WAL segment {path.name} is corrupt at byte {valid}"
                )
            if last_seq:
                self._last_seq = last_seq
        tail = segments[-1]
        last_seq, valid = self._scan_segment(tail)
        if valid != tail.stat().st_size:
            # Crash mid-append: drop the unacknowledged bytes so future
            # appends land on a clean record boundary.
            with tail.open("r+b") as handle:
                handle.truncate(valid)
                handle.flush()
                os.fsync(handle.fileno())
        if last_seq:
            self._last_seq = last_seq
        self._active = tail
        self._handle = tail.open("ab")
        # "ab" may report position 0 until the first write; the rotation
        # check in append() relies on tell() being the segment size.
        self._handle.seek(0, os.SEEK_END)

    # ------------------------------------------------------------------ #
    # State
    # ------------------------------------------------------------------ #

    @property
    def last_seq(self) -> int:
        """Sequence number of the newest intact record (0 when empty)."""
        return self._last_seq

    @property
    def acked_seq(self) -> int:
        """Sequence of the newest append that returned to its caller.

        Trails :attr:`last_seq` only after a failed append/fsync — the gap
        is exactly the record(s) no caller was ever acknowledged for,
        which :meth:`heal` truncates away.
        """
        return self._acked_seq

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    # ------------------------------------------------------------------ #
    # Append path
    # ------------------------------------------------------------------ #

    def _open_segment(self, first_seq: int) -> None:
        """Create and open a fresh segment for ``first_seq``."""
        path = _segment_path(self.directory, first_seq)
        handle = path.open("xb")
        handle.write(_MAGIC)
        handle.flush()
        os.fsync(handle.fileno())
        _fsync_dir(self.directory)
        self._active = path
        self._handle = handle

    def append(self, record: dict) -> int:
        """Append one JSON-serialisable ``record``; return its sequence.

        The record is durable once the group-commit window closes — i.e.
        immediately with the default ``sync_every=1``.

        Parameters
        ----------
        record:
            The batch payload (JSON-serialised with sorted keys).

        Raises
        ------
        IngestError
            When the log has been closed.
        """
        if self._closed:
            raise IngestError("cannot append to a closed WAL")
        with observed("wal.append", H_WAL_APPEND, counter=K_WAL_APPENDS):
            seq = self._last_seq + 1
            payload = json.dumps(
                record, sort_keys=True, separators=(",", ":")
            ).encode("utf-8")
            if self._handle is None:
                self._open_segment(seq)
            elif (
                self._handle.tell() + _HEADER.size + len(payload) + _CRC.size
                > self.segment_bytes
                and self._handle.tell() > len(_MAGIC)
            ):
                self.rotate()
                self._open_segment(seq)
            header = _HEADER.pack(seq, len(payload))
            frame = header + payload
            record = frame + _CRC.pack(zlib.crc32(frame))
            action = fault_check("wal.append")
            if action is not None:
                self._inject_append_fault(action, record)
            self._handle.write(record)
            self._handle.flush()
            self._last_seq = seq
            self._unsynced += 1
        if self._unsynced >= self.sync_every:
            self.sync()
        self._acked_seq = seq
        return seq

    def _inject_append_fault(self, action, record: bytes) -> None:
        """Enact one injected fault on the append path (failpoint plane).

        Parameters
        ----------
        action:
            The matched :class:`~repro.faults.FaultAction`.
        record:
            The framed record about to be written; a ``torn`` action
            writes only its prefix — the on-disk shape of a crash
            mid-append — before raising.
        """
        if action.kind == "torn":
            cut = (
                int(action.arg)
                if action.arg is not None
                else max(1, len(record) // 2)
            )
            cut = max(0, min(cut, len(record) - 1))
            self._handle.write(record[:cut])
            self._handle.flush()
            os.fsync(self._handle.fileno())
            raise OSError(errno.EIO, "injected torn write at wal.append")
        fault_execute(action, "wal.append")

    def sync(self) -> None:
        """fsync the active segment (no-op when nothing is pending)."""
        if self._handle is not None and self._unsynced:
            t0 = time.perf_counter()
            with observed("wal.fsync", H_WAL_FSYNC, counter=K_WAL_FSYNCS):
                fault_fire("wal.fsync")
                os.fsync(self._handle.fileno())
            self.last_sync_seconds = time.perf_counter() - t0
            self.syncs += 1
            self._unsynced = 0
            registry = get_registry()
            registry.gauge_set(G_LAST_FSYNC, self.last_sync_seconds)

    def rotate(self) -> None:
        """Seal the active segment; the next append opens a fresh one."""
        if self._handle is not None:
            fault_fire("wal.rotate")
            self._unsynced = max(self._unsynced, 1)  # force the final fsync
            self.sync()
            self._handle.close()
            self._handle = None
            self._active = None

    def _valid_bytes_through(self, path: Path, through_seq: int) -> int:
        """Byte length of ``path``'s intact prefix with sequences ``<= through_seq``.

        Parameters
        ----------
        path:
            Segment to scan.
        through_seq:
            Scan stops *before* the first record beyond this sequence (or
            at the first framing/CRC violation, whichever comes first).
        """
        data = path.read_bytes()
        if not data.startswith(_MAGIC):
            raise IngestError(f"{path} is not a WAL segment (bad magic)")
        offset = len(_MAGIC)
        while True:
            header_end = offset + _HEADER.size
            if header_end > len(data):
                break
            seq, length = _HEADER.unpack_from(data, offset)
            record_end = header_end + length + _CRC.size
            if length > _MAX_PAYLOAD or record_end > len(data):
                break
            (crc,) = _CRC.unpack_from(data, header_end + length)
            if zlib.crc32(data[offset : header_end + length]) != crc:
                break
            if seq > through_seq:
                break
            offset = record_end
        return offset

    def heal(self) -> None:
        """Re-verify and repair the log after a durability failure.

        A failed append or fsync leaves the active segment in an unknown
        state: bytes of an *unacknowledged* record — possibly a complete,
        CRC-valid frame whose fsync failed — may or may not be on disk.
        Keeping such a phantom record would break the recovery invariant
        (replay would apply a batch the live process never did), so heal
        truncates the tail back to the last acknowledged record
        (:attr:`acked_seq`), fsyncs file and directory, and reopens the
        append handle.  This doubles as the degraded-mode disk probe: it
        raises ``OSError`` while the disk is still failing, in which case
        the caller stays read-only and probes again later.

        Raises
        ------
        IngestError
            When the log is closed.
        OSError
            When the disk still fails (the probe outcome).
        """
        if self._closed:
            raise IngestError("cannot heal a closed WAL")
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:  # a broken handle cannot make things worse
                pass
            self._handle = None
            self._active = None
        segments = self._segments()
        if segments:
            tail = segments[-1]
            if (_segment_first_seq(tail) > self._acked_seq
                    and not tail.read_bytes().startswith(_MAGIC)):
                # A failed _open_segment left a file without a complete
                # magic; no acknowledged record can live in it — drop it.
                tail.unlink()
                _fsync_dir(self.directory)
                segments = self._segments()
        if segments:
            tail = segments[-1]
            valid = self._valid_bytes_through(tail, self._acked_seq)
            with tail.open("r+b") as handle:
                handle.truncate(valid)
                handle.flush()
                fault_fire("wal.fsync")
                os.fsync(handle.fileno())
            _fsync_dir(self.directory)
            self._active = tail
            self._handle = tail.open("ab")
            self._handle.seek(0, os.SEEK_END)
        self._last_seq = self._acked_seq
        self._unsynced = 0

    def truncate_through(self, seq: int) -> int:
        """Delete sealed segments whose records are *all* ``<= seq``.

        A segment is removable when the next segment starts at or below
        ``seq + 1`` (so every record it holds is covered by a snapshot).
        The active segment is never removed.

        Parameters
        ----------
        seq:
            Newest sequence number that is durable elsewhere (in a
            snapshot).

        Returns
        -------
        int
            Number of segments deleted.
        """
        segments = self._segments()
        removed = 0
        for path, successor in zip(segments, segments[1:]):
            if path == self._active:
                break
            if _segment_first_seq(successor) <= seq + 1:
                path.unlink()
                removed += 1
            else:
                break
        if removed:
            _fsync_dir(self.directory)
        return removed

    # ------------------------------------------------------------------ #
    # Replay
    # ------------------------------------------------------------------ #

    def replay(self, after: int = 0) -> "Iterator[tuple[int, dict]]":
        """Yield ``(seq, record)`` for every intact record with ``seq > after``.

        Reads the segment files directly (safe on a closed log and on a
        directory opened read-only by a recovery process).  Stops cleanly
        at the torn-tail boundary of the final segment.

        Parameters
        ----------
        after:
            Replay strictly after this sequence number (0 = everything).
        """
        for path in self._segments():
            _, valid = self._scan_segment(path)
            data = path.read_bytes()[:valid]
            offset = len(_MAGIC)
            while offset < len(data):
                seq, length = _HEADER.unpack_from(data, offset)
                start = offset + _HEADER.size
                payload = data[start : start + length]
                offset = start + length + _CRC.size
                if seq > after:
                    yield seq, json.loads(payload.decode("utf-8"))

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    _closed = False

    def close(self) -> None:
        """Flush, fsync and close the active segment."""
        if self._handle is not None:
            self.sync()
            self._handle.close()
            self._handle = None
            self._active = None
        self._closed = True

    def __enter__(self) -> "WriteAheadLog":
        """Context-manager entry: the log itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: :meth:`close`."""
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WriteAheadLog(directory={str(self.directory)!r}, "
            f"last_seq={self._last_seq}, sync_every={self.sync_every})"
        )
