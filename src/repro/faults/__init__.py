"""Deterministic fault injection for the durable serving stack.

The package's one module, :mod:`repro.faults.plane`, holds the failpoint
registry: named injection sites woven through every OS-touching layer
(WAL, snapshots, shared memory, replica pool, HTTP dispatch), fired on a
seeded deterministic schedule configured via ``REPRO_FAULTS`` /
``repro serve --faults`` and compiled to a zero-cost no-op when disabled.
See ``docs/architecture.md`` ("Fault injection & degraded modes") for the
site catalogue and the schedule grammar.
"""

from repro.faults.plane import (
    SITES,
    FaultAction,
    FaultSpecError,
    active,
    check,
    configure,
    configure_from_env,
    execute,
    fire,
    parse_schedule,
    reset,
    stats,
)

__all__ = [
    "SITES",
    "FaultAction",
    "FaultSpecError",
    "active",
    "check",
    "configure",
    "configure_from_env",
    "execute",
    "fire",
    "parse_schedule",
    "reset",
    "stats",
]
