"""Deterministic failpoint plane for the durable serving stack.

Real outages are dominated by partial failures the happy path never
exercises — a full disk mid-append, a torn write under a crash, an fsync
that starts failing, a replica that dies the instant it is spawned.  This
module makes those paths *testable and kept tested* by threading named
**failpoint sites** through every layer that touches the OS (WAL,
snapshots, shared memory, replica control, HTTP dispatch) and firing them
on a deterministic, seeded schedule.

Design rules (mirroring the telemetry plane's ``set_enabled`` discipline):

* **zero-cost when disabled** — every site is a call to :func:`fire` (or
  :func:`check`) whose first action is an early return when no plane is
  configured; production pays one module-global load per site;
* **deterministic** — triggers are hit-count based (``once:N``,
  ``every:N``, ``first:N``, ``window:N:M``) or drawn from a per-site RNG
  seeded from ``(seed, site)``, so a schedule replays identically across
  runs and processes;
* **schedules are data** — one string (``REPRO_FAULTS`` / ``--faults``)
  configures the whole process, so a chaos harness drives a real
  ``repro serve`` subprocess without bespoke hooks.

Schedule grammar — ``;``-separated clauses of ``site=action@trigger``::

    wal.fsync=enospc@window:3:6        # fsyncs 3..6 raise ENOSPC
    wal.append=torn:7@once:4           # 4th append writes 7 bytes, fails
    http.dispatch=delay:50@prob:0.1    # ~10% of requests stall 50 ms
    pool.spawn=io@first:3              # first 3 replica spawns fail
    snapshot.replace=abort@once:1      # die between tmp write and rename

Actions: ``enospc`` (raise ``OSError(ENOSPC)``), ``io`` (raise
``OSError(EIO)``), ``torn[:BYTES]`` (cooperative short write, see
:func:`check`), ``delay:MS`` (sleep), ``abort`` (``os._exit(70)`` — the
crash simulator).  Triggers: ``always``, ``once:N``, ``every:N``,
``first:N``, ``window:N:M``, ``prob:P`` (trigger omitted = ``always``).
Hit counters are per site, shared by all clauses on that site; the first
matching clause wins.
"""

from __future__ import annotations

import errno
import os
import random
import threading
import time
from dataclasses import dataclass

from repro.core.errors import ReproError

__all__ = [
    "SITES",
    "ACTION_KINDS",
    "FaultAction",
    "FaultSpecError",
    "parse_schedule",
    "configure",
    "configure_from_env",
    "reset",
    "active",
    "fire",
    "check",
    "execute",
    "stats",
]

#: Environment variables the plane is configured from in subprocesses.
ENV_SPEC = "REPRO_FAULTS"
ENV_SEED = "REPRO_FAULTS_SEED"

#: Exit status of an ``abort`` action — distinguishable from a real crash.
ABORT_STATUS = 70

#: The failpoint site catalogue.  Every OS-touching layer declares its
#: sites here; :func:`parse_schedule` rejects unknown names so a typo in a
#: chaos schedule fails fast instead of silently injecting nothing.
SITES: tuple[str, ...] = (
    "wal.append",        # record write in WriteAheadLog.append
    "wal.fsync",         # os.fsync in WriteAheadLog.sync / heal
    "wal.rotate",        # segment seal in WriteAheadLog.rotate
    "snapshot.write",    # tmp-file serialisation in SnapshotManager.save
    "snapshot.replace",  # the atomic os.replace in SnapshotManager.save
    "snapshot.prune",    # retention unlinks in SnapshotManager._prune
    "pipeline.apply",    # batch apply in IngestPipeline.ingest/apply
    "shm.export",        # shared-memory export in SharedExports
    "shm.attach",        # shared-memory attach in attach_array
    "pool.spawn",        # replica process spawn in ReplicaPool._spawn
    "pool.control",      # control-pipe exchange in _ReplicaHandle
    "pool.publish",      # versioned swap in ReplicaPool.publish
    "http.dispatch",     # request routing in ServiceServer._route
)

ACTION_KINDS = ("enospc", "io", "torn", "delay", "abort")


class FaultSpecError(ReproError):
    """Raised for a malformed fault schedule string."""


@dataclass(frozen=True)
class FaultAction:
    """One parsed fault action.

    Attributes
    ----------
    kind:
        One of :data:`ACTION_KINDS`.
    arg:
        Action parameter — bytes to keep for ``torn``, milliseconds for
        ``delay``, unused otherwise.
    """

    kind: str
    arg: float | None = None


@dataclass(frozen=True)
class _Trigger:
    """One parsed trigger: when (by site hit count) a clause matches.

    Attributes
    ----------
    kind:
        ``always``, ``once``, ``every``, ``first``, ``window`` or ``prob``.
    a, b:
        Trigger parameters (``window`` uses both; ``prob`` stores the
        probability in ``a``).
    """

    kind: str
    a: float = 0.0
    b: float = 0.0

    def matches(self, hit: int, rng: random.Random) -> bool:
        """Whether this trigger fires on the site's ``hit``-th visit (1-based).

        Parameters
        ----------
        hit:
            The site's hit counter after incrementing for this visit.
        rng:
            The site's seeded RNG (consumed only by ``prob`` triggers).
        """
        if self.kind == "always":
            return True
        if self.kind == "once":
            return hit == int(self.a)
        if self.kind == "every":
            return hit % int(self.a) == 0
        if self.kind == "first":
            return hit <= int(self.a)
        if self.kind == "window":
            return int(self.a) <= hit <= int(self.b)
        return rng.random() < self.a  # prob


def _parse_action(text: str, site: str) -> FaultAction:
    """Parse one ``action[:arg]`` fragment of a schedule clause."""
    kind, _, arg = text.partition(":")
    if kind not in ACTION_KINDS:
        raise FaultSpecError(
            f"unknown fault action {kind!r} at {site} "
            f"(expected one of {ACTION_KINDS})"
        )
    if not arg:
        if kind == "delay":
            raise FaultSpecError(f"delay at {site} needs milliseconds (delay:MS)")
        return FaultAction(kind)
    try:
        value = float(arg)
    except ValueError:
        raise FaultSpecError(f"bad argument {arg!r} for {kind} at {site}")
    if value < 0:
        raise FaultSpecError(f"{kind} argument must be >= 0 at {site}")
    return FaultAction(kind, value)


def _parse_trigger(text: str, site: str) -> _Trigger:
    """Parse one ``trigger[:args]`` fragment of a schedule clause."""
    kind, _, rest = text.partition(":")
    if kind == "always":
        return _Trigger("always")
    if kind in ("once", "every", "first"):
        try:
            n = int(rest)
        except ValueError:
            raise FaultSpecError(f"{kind} at {site} needs an integer ({kind}:N)")
        if n < 1:
            raise FaultSpecError(f"{kind}:N at {site} needs N >= 1, got {n}")
        return _Trigger(kind, n)
    if kind == "window":
        try:
            lo, hi = (int(v) for v in rest.split(":"))
        except ValueError:
            raise FaultSpecError(f"window at {site} needs window:N:M")
        if lo < 1 or hi < lo:
            raise FaultSpecError(f"window:{lo}:{hi} at {site} must be 1 <= N <= M")
        return _Trigger(kind, lo, hi)
    if kind == "prob":
        try:
            p = float(rest)
        except ValueError:
            raise FaultSpecError(f"prob at {site} needs a probability (prob:P)")
        if not 0.0 <= p <= 1.0:
            raise FaultSpecError(f"prob:{p} at {site} must be in [0, 1]")
        return _Trigger(kind, p)
    raise FaultSpecError(f"unknown fault trigger {kind!r} at {site}")


def parse_schedule(spec: str) -> dict[str, list[tuple[FaultAction, _Trigger]]]:
    """Parse a schedule string into ``site -> [(action, trigger), ...]``.

    Parameters
    ----------
    spec:
        The grammar described in the module docstring.  Empty/whitespace
        clauses are skipped, so trailing ``;`` are harmless.

    Raises
    ------
    FaultSpecError
        For an unknown site, action or trigger, or malformed arguments.
    """
    schedule: dict[str, list[tuple[FaultAction, _Trigger]]] = {}
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        site, sep, rest = clause.partition("=")
        site = site.strip()
        if not sep or not rest:
            raise FaultSpecError(
                f"malformed fault clause {clause!r} (want site=action@trigger)"
            )
        if site not in SITES:
            raise FaultSpecError(
                f"unknown fault site {site!r} (known sites: {', '.join(SITES)})"
            )
        action_text, sep, trigger_text = rest.partition("@")
        action = _parse_action(action_text.strip(), site)
        trigger = (
            _parse_trigger(trigger_text.strip(), site) if sep else _Trigger("always")
        )
        schedule.setdefault(site, []).append((action, trigger))
    return schedule


class _FaultPlane:
    """Compiled schedule plus per-site hit counters and seeded RNGs.

    Parameters
    ----------
    schedule:
        Output of :func:`parse_schedule`.
    seed:
        Global seed; each site's RNG is seeded from ``(seed, site)`` so
        probabilistic triggers are deterministic per site and independent
        of evaluation order across sites.
    """

    def __init__(
        self,
        schedule: dict[str, list[tuple[FaultAction, _Trigger]]],
        seed: int,
    ) -> None:
        self.schedule = schedule
        self.seed = int(seed)
        self._lock = threading.Lock()
        self.hits: dict[str, int] = {site: 0 for site in schedule}
        self.injected: dict[str, int] = {site: 0 for site in schedule}
        self._rngs = {
            site: random.Random(f"{seed}:{site}") for site in schedule
        }

    def trigger(self, site: str) -> FaultAction | None:
        """Count one visit to ``site``; return the matching action, if any."""
        clauses = self.schedule.get(site)
        if clauses is None:
            return None
        with self._lock:
            self.hits[site] += 1
            hit = self.hits[site]
            rng = self._rngs[site]
            for action, trig in clauses:
                if trig.matches(hit, rng):
                    self.injected[site] += 1
                    break
            else:
                return None
        _record_injection()
        return action


_PLANE: _FaultPlane | None = None


def configure(spec: str, seed: int = 0) -> None:
    """Install a fault schedule for this process.

    Parameters
    ----------
    spec:
        Schedule string (see module docstring); an empty string resets.
    seed:
        Seed for probabilistic triggers.

    Raises
    ------
    FaultSpecError
        For a malformed schedule.
    """
    global _PLANE
    if not spec or not spec.strip():
        _PLANE = None
        return
    _PLANE = _FaultPlane(parse_schedule(spec), seed)


def configure_from_env() -> bool:
    """Configure from :data:`ENV_SPEC` / :data:`ENV_SEED` if present.

    A no-op when a plane is already configured (an explicit
    :func:`configure` wins over the environment) or when the variable is
    unset.  Returns whether a plane is active afterwards.  Worker
    processes call this during startup so a chaos schedule set on a
    ``repro serve`` subprocess reaches spawn-started replicas too.
    """
    if _PLANE is not None:
        return True
    spec = os.environ.get(ENV_SPEC, "")
    if spec.strip():
        configure(spec, seed=int(os.environ.get(ENV_SEED, "0") or "0"))
    return _PLANE is not None


def reset() -> None:
    """Remove the installed schedule (test isolation helper)."""
    global _PLANE
    _PLANE = None


def active() -> bool:
    """Whether a fault schedule is currently installed in this process."""
    return _PLANE is not None


def _record_injection() -> None:
    """Count one injected fault into the telemetry plane (best effort)."""
    try:
        from repro.obs.registry import K_FAULTS_INJECTED
        from repro.obs.runtime import get_registry

        get_registry().inc(K_FAULTS_INJECTED)
    except Exception:  # noqa: BLE001 - telemetry must never mask the fault
        pass


def execute(action: FaultAction, site: str) -> None:
    """Carry out a non-cooperative ``action`` at ``site``.

    Parameters
    ----------
    action:
        The matched :class:`FaultAction`.
    site:
        Site name, embedded in the raised error message.

    Raises
    ------
    OSError
        ``ENOSPC`` for ``enospc``, ``EIO`` for ``io`` and for ``torn`` at
        a site with no cooperative short-write handling.
    """
    kind = action.kind
    if kind == "enospc":
        raise OSError(errno.ENOSPC, f"injected ENOSPC at {site}")
    if kind == "delay":
        time.sleep((action.arg or 0.0) / 1000.0)
        return
    if kind == "abort":
        os._exit(ABORT_STATUS)
    # "io", and "torn" at a site that cannot short-write cooperatively.
    raise OSError(errno.EIO, f"injected I/O error at {site}")


def fire(site: str) -> None:
    """Visit failpoint ``site``; execute the scheduled action, if any.

    The production fast path: one module-global load and an early return
    when no plane is configured.

    Parameters
    ----------
    site:
        A name from :data:`SITES`.
    """
    plane = _PLANE
    if plane is None:
        return
    action = plane.trigger(site)
    if action is not None:
        execute(action, site)


def check(site: str) -> FaultAction | None:
    """Visit ``site`` and return the matched action for cooperative handling.

    Call sites that can enact an action more faithfully than a raised
    exception — the WAL's torn short-write, the HTTP server's async delay
    — use this form and fall back to :func:`execute` for the rest.

    Parameters
    ----------
    site:
        A name from :data:`SITES`.
    """
    plane = _PLANE
    if plane is None:
        return None
    return plane.trigger(site)


def stats() -> dict[str, dict[str, int]]:
    """Per-site ``{"hits", "injected"}`` counts (empty when inactive)."""
    plane = _PLANE
    if plane is None:
        return {}
    with plane._lock:
        return {
            site: {
                "hits": plane.hits[site],
                "injected": plane.injected[site],
            }
            for site in plane.schedule
        }
