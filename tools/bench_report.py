#!/usr/bin/env python
"""Aggregate ``benchmarks/BENCH_*.json`` into the docs trajectory table.

Every timed run in the repository writes machine-readable
``benchmarks/BENCH_<name>.json`` records through one writer
(``benchmarks/_timing.py::write_bench_json``).  This tool renders all of
them into one markdown table and splices it into ``docs/benchmarks.md``
between the ``<!-- bench-trajectory:begin -->`` / ``<!-- bench-trajectory:end -->``
markers, so the recorded performance trajectory in the docs is generated,
never hand-maintained::

    python tools/bench_report.py            # rewrite docs/benchmarks.md
    python tools/bench_report.py --check    # CI: fail if the docs are stale

Exit status: 0 on success (or up-to-date docs), 1 when ``--check`` finds
the committed table out of sync with the committed ``BENCH_*.json`` files.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
BENCH_DIR = ROOT / "benchmarks"
DOCS_PATH = ROOT / "docs" / "benchmarks.md"
BEGIN = "<!-- bench-trajectory:begin -->"
END = "<!-- bench-trajectory:end -->"

#: Entry keys folded into the "configuration" column, in display order.
_CONFIG_KEYS = (
    "backend", "store", "kernels", "threads", "stage", "semantics", "shards",
    "workers", "execution", "metric", "replicas", "clients", "read_ratio",
    "batch_size", "k", "max_groups", "requests",
)
#: Entry keys folded into the "notes" column (derived figures).
_NOTE_KEYS = (
    "speedup", "speedup_vs_fast", "updates_per_second", "events_per_second",
    "requests_per_second", "scaling_vs_single", "physical_cap",
    "batches_replayed",
    "peak_rss_gib", "objective", "generate_seconds",
    "server_p50_le", "server_p99_le", "queue_wait_mean", "service_time_mean",
    "obs_overhead", "faults_overhead",
    "availability", "replica_kills", "respawns", "respawn_failures",
    "parity_mismatches", "parity_ok", "pool_recovery_seconds",
    "enter_latency_seconds", "faults_injected", "acked_writes",
    "backoff_attempts", "backoff_sum_seconds",
)


def _format_seconds(seconds: float) -> str:
    """Human-scale wall-clock rendering (ms below one second)."""
    if seconds < 1.0:
        return f"{seconds * 1000:.1f} ms"
    return f"{seconds:.2f} s"


def _format_value(value) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def render_table(bench_files: list[Path]) -> str:
    """Render every bench entry as one markdown table.

    Parameters
    ----------
    bench_files:
        The ``BENCH_*.json`` paths to aggregate (sorted for stability).
    """
    lines = [
        "| Bench | Commit | Instance | Configuration | Time | Notes |",
        "|-------|--------|----------|---------------|------|-------|",
    ]
    for path in bench_files:
        with path.open(encoding="utf-8") as handle:
            payload = json.load(handle)
        name = payload.get("name", path.stem)
        commit = payload.get("commit", "?")
        for entry in payload.get("entries", []):
            config = ", ".join(
                f"{key}={_format_value(entry[key])}"
                for key in _CONFIG_KEYS
                if key in entry
            )
            notes = ", ".join(
                f"{key}={_format_value(entry[key])}"
                for key in _NOTE_KEYS
                if key in entry
            )
            seconds = entry.get("seconds")
            lines.append(
                f"| {name} | {commit} | {entry.get('instance', '?')} "
                f"| {config} | "
                f"{_format_seconds(seconds) if seconds is not None else '—'} "
                f"| {notes} |"
            )
    return "\n".join(lines)


def splice(document: str, table: str) -> str:
    """Replace the marker-delimited region of ``document`` with ``table``.

    Parameters
    ----------
    document:
        Current ``docs/benchmarks.md`` contents.
    table:
        Rendered markdown table.
    """
    try:
        head, rest = document.split(BEGIN, 1)
        _, tail = rest.split(END, 1)
    except ValueError as exc:
        raise SystemExit(
            f"{DOCS_PATH} is missing the {BEGIN} / {END} markers"
        ) from exc
    return f"{head}{BEGIN}\n{table}\n{END}{tail}"


def main(argv=None) -> int:
    """Entry point: rewrite (or ``--check``) the docs trajectory table.

    Parameters
    ----------
    argv:
        Argument vector (default: ``sys.argv[1:]``).
    """
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="verify docs/benchmarks.md is up to date instead "
                             "of rewriting it (CI mode)")
    args = parser.parse_args(argv)

    bench_files = sorted(BENCH_DIR.glob("BENCH_*.json"))
    if not bench_files:
        print("no BENCH_*.json files found", file=sys.stderr)
        return 1
    table = render_table(bench_files)
    document = DOCS_PATH.read_text(encoding="utf-8")
    updated = splice(document, table)
    if args.check:
        if updated != document:
            print(
                f"{DOCS_PATH} trajectory table is stale; run "
                f"`python tools/bench_report.py` and commit the result",
                file=sys.stderr,
            )
            return 1
        print(f"{DOCS_PATH} trajectory table is up to date "
              f"({len(bench_files)} bench files)")
        return 0
    if updated != document:
        DOCS_PATH.write_text(updated, encoding="utf-8")
        print(f"rewrote {DOCS_PATH} from {len(bench_files)} bench files")
    else:
        print(f"{DOCS_PATH} already up to date")
    return 0


if __name__ == "__main__":
    sys.exit(main())
