#!/usr/bin/env python
"""Markdown link checker for the repository docs.

Scans the given markdown files (default: ``README.md`` and ``docs/*.md``)
for inline links and validates every **relative** link target — file or
directory — actually exists (anchors are stripped; external ``http(s)``,
``mailto:`` and bare-anchor links are skipped).  Exits non-zero listing
every broken link, so CI catches docs drift the moment a file moves.

Usage::

    python tools/check_doc_links.py [FILE.md ...]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline markdown links: [text](target) — images included via the optional !.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")


def iter_links(text: str):
    """Yield link targets outside fenced code blocks."""
    in_fence = False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(line):
            yield match.group(1)


def check_file(path: Path) -> list[str]:
    """Return the broken relative links of one markdown file."""
    broken = []
    for target in iter_links(path.read_text(encoding="utf-8")):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = (path.parent / relative).resolve()
        if not resolved.exists():
            broken.append(f"{path.relative_to(REPO_ROOT)}: broken link -> {target}")
    return broken


def main(argv: list[str] | None = None) -> int:
    """Check every given (or default) markdown file; return the exit status."""
    argv = sys.argv[1:] if argv is None else argv
    if argv:
        files = [Path(arg).resolve() for arg in argv]
    else:
        files = [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").glob("*.md"))]
    failures: list[str] = []
    for path in files:
        if not path.exists():
            failures.append(f"{path}: file not found")
            continue
        failures.extend(check_file(path))
    if failures:
        print("\n".join(failures), file=sys.stderr)
        return 1
    print(f"OK: {len(files)} markdown files, all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
