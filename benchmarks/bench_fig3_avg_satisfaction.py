"""Figure 3(a-d): average group satisfaction over the top-k list (AV-Min,
MovieLens-like data) vs #users / #items / #groups / top-k."""

from __future__ import annotations

from conftest import report

from repro.core import grd_av_min
from repro.experiments import figure3
from repro.metrics import average_group_satisfaction


def test_fig3_grd_av_min_runtime(benchmark, movielens_quality):
    """Time GRD-AV-MIN on the default quality instance."""
    result = benchmark(grd_av_min, movielens_quality, 10, 5)
    assert result.n_groups <= 10


def test_fig3_avg_satisfaction_near_maximum(movielens_quality):
    """The paper notes GRD-AV-MIN stays close to the maximum possible 25."""
    result = grd_av_min(movielens_quality, 10, 5)
    satisfaction = average_group_satisfaction(movielens_quality, result)
    assert satisfaction > 0.75 * 25.0


def test_fig3_reproduce_series(benchmark):
    """Regenerate Figure 3(a-d) and check GRD dominates the baseline."""
    panels = benchmark.pedantic(
        figure3, kwargs=dict(scale="bench", seed=0), rounds=1, iterations=1
    )
    report("Figure 3: avg satisfaction on top-k itemset (AV-Min, MovieLens-like)", panels)
    for panel in panels:
        grd = panel.series_for("GRD-AV-MIN").y_values
        baseline = panel.series_for("Baseline-AV-MIN").y_values
        assert sum(grd) >= sum(baseline)
        # Satisfaction stays on the rating scale times k (per-member measure).
        assert all(value <= 25.0 * 5 for value in grd)
