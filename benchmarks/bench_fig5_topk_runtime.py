"""Figure 5(a-d): runtime vs top-k for LM-Min, LM-Sum, AV-Min and AV-Sum.

The figure's four panels share one instance while varying ``(k, semantics,
aggregation)`` — exactly the shape of the engine's batch API, so this module
also benchmarks :meth:`~repro.core.engine.FormationEngine.run_many` driving
the whole variant sweep in one call (sharing the top-k table and the AV/LM
bucketing across configurations) and checks it agrees with one-at-a-time
runs.
"""

from __future__ import annotations

from conftest import report

from repro.core import FormationConfig, FormationEngine
from repro.experiments import figure5, run_grd_configs

_SWEEP = [
    FormationConfig(max_groups=groups, k=k, semantics=semantics, aggregation=aggregation)
    for k in (5, 25, 50)
    for groups in (10, 100)
    for semantics in ("lm", "av")
    for aggregation in ("min", "sum")
]


def test_fig5_grd_lm_sum_deep_list_runtime(benchmark, yahoo_scalability):
    """Time GRD-LM-SUM with a deep list (k=100) at scalability scale."""
    engine = FormationEngine("numpy")
    result = benchmark(engine.run, yahoo_scalability, 10, 100, "lm", "sum")
    assert result.k == 100


def test_fig5_grd_av_sum_deep_list_runtime(benchmark, yahoo_scalability):
    """Time GRD-AV-SUM with a deep list (k=100) at scalability scale."""
    engine = FormationEngine("numpy")
    result = benchmark(engine.run, yahoo_scalability, 10, 100, "av", "sum")
    assert result.k == 100


def test_fig5_batch_variant_sweep(benchmark, yahoo_scalability):
    """Time the full (k, l, semantics, aggregation) sweep via run_many."""
    outcomes = benchmark.pedantic(
        run_grd_configs,
        args=(yahoo_scalability, _SWEEP),
        kwargs=dict(backend="numpy"),
        rounds=1,
        iterations=1,
    )
    assert len(outcomes) == len(_SWEEP)
    # The batch API must agree with one-at-a-time runs.
    engine = FormationEngine("numpy")
    probe = _SWEEP[0]
    single = engine.run(
        yahoo_scalability, probe.max_groups, probe.k, probe.semantics, probe.aggregation
    )
    _, batch = outcomes[0]
    assert batch.objective == single.objective
    assert [g.members for g in batch.groups] == [g.members for g in single.groups]


def test_fig5_reproduce_series(benchmark):
    """Regenerate Figure 5(a-d) and check GRD stays below the baseline."""
    panels = benchmark.pedantic(
        figure5,
        kwargs=dict(scale="bench", seed=0, backend="numpy"),
        rounds=1,
        iterations=1,
    )
    report("Figure 5: run time vs top-k (LM/AV x Min/Sum)", panels)
    assert len(panels) == 4
    for panel in panels:
        algorithms = panel.algorithms()
        grd_name = next(a for a in algorithms if a.startswith("GRD"))
        baseline_name = next(a for a in algorithms if a.startswith("Baseline"))
        grd = panel.series_for(grd_name).y_values
        baseline = panel.series_for(baseline_name).y_values
        assert sum(grd) <= sum(baseline)
