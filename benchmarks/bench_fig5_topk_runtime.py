"""Figure 5(a-d): runtime vs top-k for LM-Min, LM-Sum, AV-Min and AV-Sum."""

from __future__ import annotations

from conftest import report

from repro.core import grd_av_sum, grd_lm_sum
from repro.experiments import figure5


def test_fig5_grd_lm_sum_deep_list_runtime(benchmark, yahoo_scalability):
    """Time GRD-LM-SUM with a deep list (k=100) at scalability scale."""
    result = benchmark(grd_lm_sum, yahoo_scalability, 10, 100)
    assert result.k == 100


def test_fig5_grd_av_sum_deep_list_runtime(benchmark, yahoo_scalability):
    """Time GRD-AV-SUM with a deep list (k=100) at scalability scale."""
    result = benchmark(grd_av_sum, yahoo_scalability, 10, 100)
    assert result.k == 100


def test_fig5_reproduce_series(benchmark):
    """Regenerate Figure 5(a-d) and check GRD stays below the baseline."""
    panels = benchmark.pedantic(
        figure5, kwargs=dict(scale="bench", seed=0), rounds=1, iterations=1
    )
    report("Figure 5: run time vs top-k (LM/AV x Min/Sum)", panels)
    assert len(panels) == 4
    for panel in panels:
        algorithms = panel.algorithms()
        grd_name = next(a for a in algorithms if a.startswith("GRD"))
        baseline_name = next(a for a in algorithms if a.startswith("Baseline"))
        grd = panel.series_for(grd_name).y_values
        baseline = panel.series_for(baseline_name).y_values
        assert sum(grd) <= sum(baseline)
