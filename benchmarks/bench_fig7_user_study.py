"""Figure 7(a-c): the (simulated) Amazon Mechanical Turk user study."""

from __future__ import annotations

from conftest import report

from repro.experiments import figure7
from repro.userstudy import UserStudyConfig, run_user_study


def test_fig7_user_study_runtime(benchmark):
    """Time one full run of the two-phase simulated study."""
    config = UserStudyConfig(seed=7)
    study = benchmark.pedantic(run_user_study, args=(config,), rounds=1, iterations=1)
    assert len(study.conditions) == 6


def test_fig7_reproduce_panels(benchmark):
    """Regenerate Figure 7 and check the headline claims."""
    panels = benchmark.pedantic(figure7, kwargs=dict(seed=7), rounds=1, iterations=1)
    report("Figure 7: simulated user study (GRD-LM vs Baseline-LM)", panels)
    panel_a = next(p for p in panels if p.experiment_id == "fig7a")
    # Figure 7(a): a clear majority of (simulated) raters prefer GRD-LM.
    for series in panel_a.series:
        values = dict(zip(series.x_values, series.y_values))
        assert values["GRD-LM"] > values["Baseline-LM"]
    # Figures 7(b, c): GRD's mean satisfaction is at least the baseline's for
    # every sample type.
    for panel_id in ("fig7b", "fig7c"):
        panel = next(p for p in panels if p.experiment_id == panel_id)
        grd_series = next(s for s in panel.series if s.algorithm.startswith("GRD"))
        base_series = next(s for s in panel.series if s.algorithm.startswith("Baseline"))
        for grd_value, base_value in zip(grd_series.y_values, base_series.y_values):
            assert grd_value >= base_value - 0.15
