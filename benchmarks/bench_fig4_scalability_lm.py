"""Figure 4(a-c): runtime of LM-Min group formation vs #users / #items / #groups.

The bench scale keeps the ratios of the paper's sweeps (users quadruple,
items quadruple, groups grow by orders of magnitude) on instances sized for
this container; the claims being reproduced are about growth shape — GRD
linear in users and groups, flat in items, and well below the clustering
baseline everywhere.

The timed runs go through the :class:`~repro.core.engine.FormationEngine`,
and the backend-comparison benchmark pits the vectorised ``"numpy"`` backend
against the loop-based ``"reference"`` backend on the sweep's largest
instance — the two must agree bit for bit while the numpy backend wins on
wall clock (``benchmarks/check_regression.py`` enforces the same invariant
outside pytest).
"""

from __future__ import annotations

import numpy as np
from _timing import bench_entry, best_time, results_identical, write_bench_json
from conftest import report

from repro.core import FormationEngine
from repro.experiments import figure4


def test_fig4_grd_lm_min_scalability_runtime(benchmark, yahoo_scalability):
    """Time GRD-LM-MIN through the engine at the bench defaults (2000 x 400)."""
    engine = FormationEngine("numpy")
    result = benchmark(engine.run, yahoo_scalability, 10, 5, "lm", "min")
    assert result.n_users == 2000
    assert result.extras["backend"] == "numpy"


def test_fig4_backend_speedup_largest_instance(yahoo_scalability_large):
    """The numpy backend beats the reference backend at the largest fig4 size."""
    timings = {}
    results = {}
    for backend in ("reference", "numpy"):
        timings[backend], results[backend] = best_time(
            FormationEngine(backend), yahoo_scalability_large, 10, 5, "lm"
        )
    speedup = timings["reference"] / timings["numpy"]
    print(
        f"\nfig4 largest instance (4000 users): reference "
        f"{timings['reference'] * 1000:.1f} ms, numpy "
        f"{timings['numpy'] * 1000:.1f} ms ({speedup:.1f}x)"
    )
    write_bench_json(
        "fig4_backends",
        [
            bench_entry("fig4 largest instance (4000x400, l=10, k=5)",
                        seconds, backend=backend, semantics="lm")
            for backend, seconds in timings.items()
        ],
    )
    assert results_identical(results["reference"], results["numpy"])
    # The engine measures ~6x here; the assert is set at 3x so a noisy
    # machine cannot flake the bench.  The hard >= 5x acceptance gate lives
    # in check_regression.py (--users 4000 --items 400 --min-speedup 5.0).
    assert speedup >= 3.0


def test_fig4_execution_plane_parity(yahoo_scalability, tmp_path):
    """Process-pool sharding and a warm artifact cache reproduce the engine.

    The execution plane promises to be a pure scheduling/caching detail:
    a ``--execution processes`` sharded run (store exported to shared
    memory, workers attached zero-copy) and a run served from a warm
    :class:`~repro.execution.cache.ArtifactCache` (memory-mapped top-k
    index, no build) must both be bit-identical to the plain engine on
    this integer-rated LM instance.
    """
    from repro.core import ShardedFormation, TopKIndex
    from repro.execution import ArtifactCache

    engine = FormationEngine("numpy")
    seconds, baseline = best_time(engine, yahoo_scalability, 10, 5, "lm")

    sharded = ShardedFormation(shards=4, workers=2, execution="processes")
    processes_result = sharded.run(yahoo_scalability, 10, 5, "lm", "min")
    assert results_identical(baseline, processes_result)
    assert processes_result.extras["execution"] == "processes"

    cache = ArtifactCache(tmp_path)
    from repro.core.engine import coerce_store

    store = coerce_store(yahoo_scalability)
    cache.get_or_build_index(store, 5)
    builds_before = TopKIndex.builds
    warm_index, hit = cache.get_or_build_index(store, 5)
    assert hit and TopKIndex.builds == builds_before
    warm_result = engine.run(store, 10, 5, "lm", "min", topk=warm_index)
    assert results_identical(baseline, warm_result)

    write_bench_json(
        "fig4_execution",
        [
            bench_entry("fig4 bench instance (2000x400, l=10, k=5)", seconds,
                        backend="numpy", semantics="lm", execution="serial"),
        ],
    )


def test_fig4_reproduce_series(benchmark):
    """Regenerate Figure 4(a-c) and check the scaling shapes."""
    panels = benchmark.pedantic(
        figure4,
        kwargs=dict(scale="bench", seed=0, backend="numpy"),
        rounds=1,
        iterations=1,
    )
    report("Figure 4: run time under LM-Min (Yahoo!-Music-like data)", panels)
    users_panel, items_panel, groups_panel = panels

    grd_users = users_panel.series_for("GRD-LM-MIN").y_values
    base_users = users_panel.series_for("Baseline-LM-MIN").y_values
    # GRD is consistently faster than the baseline.
    assert all(g <= b for g, b in zip(grd_users, base_users))
    # Roughly linear growth in users: an 8x user increase should not blow up
    # the runtime by more than ~24x (allowing constant-factor noise).
    assert grd_users[-1] <= max(24 * grd_users[0], grd_users[0] + 0.5)

    grd_items = items_panel.series_for("GRD-LM-MIN").y_values
    # Insensitive to the catalogue size (paper: independent of m).
    assert grd_items[-1] <= max(6 * grd_items[0], grd_items[0] + 0.5)

    grd_groups = groups_panel.series_for("GRD-LM-MIN").y_values
    assert np.all(np.asarray(grd_groups) >= 0.0)
