"""Figure 4(a-c): runtime of LM-Min group formation vs #users / #items / #groups.

The bench scale keeps the ratios of the paper's sweeps (users quadruple,
items quadruple, groups grow by orders of magnitude) on instances sized for
this container; the claims being reproduced are about growth shape — GRD
linear in users and groups, flat in items, and well below the clustering
baseline everywhere.
"""

from __future__ import annotations

import numpy as np
from conftest import report

from repro.core import grd_lm_min
from repro.experiments import figure4


def test_fig4_grd_lm_min_scalability_runtime(benchmark, yahoo_scalability):
    """Time GRD-LM-MIN at the bench scalability defaults (2000 x 400)."""
    result = benchmark(grd_lm_min, yahoo_scalability, 10, 5)
    assert result.n_users == 2000


def test_fig4_reproduce_series(benchmark):
    """Regenerate Figure 4(a-c) and check the scaling shapes."""
    panels = benchmark.pedantic(
        figure4, kwargs=dict(scale="bench", seed=0), rounds=1, iterations=1
    )
    report("Figure 4: run time under LM-Min (Yahoo!-Music-like data)", panels)
    users_panel, items_panel, groups_panel = panels

    grd_users = users_panel.series_for("GRD-LM-MIN").y_values
    base_users = users_panel.series_for("Baseline-LM-MIN").y_values
    # GRD is consistently faster than the baseline.
    assert all(g <= b for g, b in zip(grd_users, base_users))
    # Roughly linear growth in users: an 8x user increase should not blow up
    # the runtime by more than ~24x (allowing constant-factor noise).
    assert grd_users[-1] <= max(24 * grd_users[0], grd_users[0] + 0.5)

    grd_items = items_panel.series_for("GRD-LM-MIN").y_values
    # Insensitive to the catalogue size (paper: independent of m).
    assert grd_items[-1] <= max(6 * grd_items[0], grd_items[0] + 0.5)

    grd_groups = groups_panel.series_for("GRD-LM-MIN").y_values
    assert np.all(np.asarray(grd_groups) >= 0.0)
