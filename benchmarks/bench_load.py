#!/usr/bin/env python
"""Closed-loop load harness: serving throughput/latency vs replica count.

For each requested replica count this harness boots a real ``repro
serve`` subprocess (``0`` replicas = the single-process baseline), then:

* **parity leg (blocking)** — replays a deterministic script of
  recommend requests and event batches and asserts every response is
  bit-identical to the single-process baseline at the same index version
  (serving bookkeeping stripped via
  :func:`repro.service.pool.canonical_response`).  Replicas that compute
  anything different from the writer are a correctness bug, not a perf
  trade-off, so a mismatch fails the bench regardless of throughput.
* **load leg** — N closed-loop client threads issue mixed traffic
  (``--read-ratio`` recommend requests, the rest event batches) until
  each has completed its quota.  Reads cycle through a pool of distinct
  ``user_ids`` subsets larger than the service's result memo, so the
  replicas do real formation work instead of answering from cache.
  Records read throughput and p50/p99 latency.
* **telemetry cross-check (blocking)** — the server's ``/v1/metrics``
  histograms are scraped before and after the load leg; the delta's
  p50/p99 must land within one log-spaced bucket of the client-observed
  percentiles, and (with replicas) the queue-wait vs replica-service
  mean split is recorded as ``load_latency_split``.

Results land in ``BENCH_service.json`` under the ``load_`` metric
namespace (merged, so the update/recovery bench's entries survive):
``load_read_throughput`` (``requests_per_second``, plus ``writes`` and
wall ``seconds``), ``load_read_p50`` and ``load_read_p99`` (latency
seconds), one triple per replica count, each entry carrying
``replicas``, ``clients`` and ``read_ratio``.

The scaling gate — best multi-replica read throughput must exceed the
single-process baseline — is enforced when the bench host has more than
one usable core.  On a single-core host replica parallelism cannot beat
one process on compute-bound reads (there is literally one core to run
either way); the gate is then recorded as ``physical_cap`` and reported,
keeping the parity gate blocking everywhere.  ``--min-scaling`` overrides
(``0`` disables, values > 1 tighten).

CI runs this at a tiny scale through ``check_regression.py --service``;
the acceptance-scale run is::

    PYTHONPATH=src python benchmarks/bench_load.py

"""

from __future__ import annotations

import argparse
import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.request

from _timing import bench_entry, merge_bench_json

from repro.obs.registry import LATENCY_BUCKETS, bucket_index, bucket_quantile
from repro.service.pool import canonical_response


def percentile(samples, q):
    """Nearest-rank percentile of a sample list."""
    ordered = sorted(samples)
    idx = min(len(ordered) - 1, max(0, int(round(q / 100 * len(ordered) - 0.5))))
    return ordered[idx]


def fetch_metrics(port: int) -> dict:
    """Scrape the server's ``/v1/metrics`` JSON exposition."""
    url = f"http://127.0.0.1:{port}/v1/metrics?format=json"
    with urllib.request.urlopen(url, timeout=30) as response:
        return json.load(response)


def hist_delta(before: dict, after: dict, key: str) -> dict:
    """Per-bucket delta of one histogram between two metric scrapes.

    The registry's counters are monotonic, so the difference isolates
    exactly the observations made between the scrapes — here, the load
    leg — regardless of what the parity script did earlier.
    """
    b = before["histograms"][key]
    a = after["histograms"][key]
    counts = [ab[1] - bb[1] for ab, bb in zip(a["buckets"], b["buckets"])]
    counts.append(a["overflow"] - b["overflow"])
    return {
        "counts": counts,
        "count": a["count"] - b["count"],
        "sum": a["sum"] - b["sum"],
    }


def cross_check_latency(client_p50: float, client_p99: float,
                        delta: dict, failures: list[str],
                        label: str) -> dict:
    """Require client- and server-side p50/p99 to land within one bucket.

    The server histogram has fixed log-spaced buckets, so the strongest
    honest claim is bucket-level agreement: the client-side percentile
    must fall in the same bucket as the server-side one, or an adjacent
    one (timestamps straddle the socket, so exact agreement is not
    guaranteed).  A larger gap means the exposition is lying about the
    latency distribution — that fails the bench.
    """
    report = {"server_count": delta["count"]}
    if delta["count"] <= 0:
        failures.append(
            f"{label}: server recommend histogram recorded no observations "
            f"during the load leg"
        )
        return report
    for name, q, client_value in (("p50", 0.5, client_p50),
                                  ("p99", 0.99, client_p99)):
        server_bound = bucket_quantile(delta["counts"], q)
        report[f"server_{name}_le"] = server_bound
        if server_bound is None:  # overflow bucket: cannot localise
            continue
        server_idx = LATENCY_BUCKETS.index(server_bound)
        client_idx = bucket_index(client_value)
        report[f"{name}_bucket_gap"] = abs(client_idx - server_idx)
        if abs(client_idx - server_idx) > 1:
            failures.append(
                f"{label}: client {name} {client_value * 1000:.2f} ms "
                f"(bucket {client_idx}) vs server histogram {name} "
                f"<= {server_bound * 1000:.2f} ms (bucket {server_idx}) "
                f"disagree by more than one bucket"
            )
    return report


def usable_cores() -> int:
    """CPU cores actually available to this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def start_server(args: argparse.Namespace, replicas: int):
    """Boot one ``repro serve`` subprocess and wait for its port.

    Returns ``(process, port)``; the caller stops it with
    :func:`stop_server`.
    """
    cmd = [
        sys.executable, "-m", "repro.service.cli", "serve",
        "--users", str(args.users), "--items", str(args.items),
        "--store", args.store, "--seed", str(args.seed),
        "--k-max", str(args.k_max), "--shards", str(args.shards),
        "--port", "0", "--batch-window", "0.005",
    ]
    if replicas:
        cmd += ["--replicas", str(replicas),
                "--replica-inflight", str(args.replica_inflight),
                "--queue-depth", str(args.queue_depth)]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH", "")) if p
    )
    proc = subprocess.Popen(
        cmd, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env,
    )
    port = None
    deadline = time.time() + 60
    while time.time() < deadline and port is None:
        line = proc.stdout.readline()
        if not line and proc.poll() is not None:
            break
        match = re.search(r"listening on http://[^:]+:(\d+)", line)
        if match:
            port = int(match.group(1))
    if port is None:
        proc.kill()
        raise RuntimeError(f"server with {replicas} replicas never came up")
    return proc, port


def stop_server(proc) -> None:
    """SIGTERM the server and require a clean (exit 0) shutdown."""
    proc.send_signal(signal.SIGTERM)
    rc = proc.wait(timeout=60)
    tail = proc.stdout.read()
    if rc != 0 or "Traceback" in tail:
        raise RuntimeError(f"server exited uncleanly (rc={rc}):\n{tail}")


def post(port: int, path: str, body: dict, timeout: float = 60.0) -> dict:
    """POST a JSON body and return the parsed JSON response."""
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=timeout) as response:
        return json.load(response)


def make_subsets(args: argparse.Namespace) -> list[list[int]]:
    """Deterministic pool of distinct ``user_ids`` subsets for read traffic.

    More subsets than the service's result memo (128 entries), so cycling
    through them keeps reads compute-bound instead of cache-bound.
    """
    import numpy as np

    rng = np.random.default_rng(args.seed + 17)
    size = max(8, min(64, args.users // 4))
    return [
        sorted(rng.choice(args.users, size=size, replace=False).tolist())
        for _ in range(args.subsets)
    ]


def script_events(args: argparse.Namespace, batch: int) -> list[dict]:
    """The deterministic event batch ``batch`` of the parity script."""
    import numpy as np

    rng = np.random.default_rng(args.seed + 1000 + batch)
    return [
        {
            "kind": "rating",
            "user": int(rng.integers(0, args.users)),
            "item": int(rng.integers(0, args.items)),
            "score": float(rng.integers(1, 6)),
        }
        for _ in range(32)
    ]


def parity_trace(port: int, args: argparse.Namespace,
                 subsets: list[list[int]]) -> list[dict]:
    """Replay the deterministic read/write script; return canonical reads.

    The script interleaves whole-population reads, subset reads and event
    batches; each read's canonical response (bookkeeping stripped, index
    version kept) must match the single-process baseline bit for bit.
    """
    trace = []

    def read(user_ids=None):
        payload = post(port, "/v1/recommend", {
            "k": args.k, "max_groups": args.groups, "user_ids": user_ids,
        })
        trace.append(canonical_response(payload))

    read()
    for i in range(3):
        read(subsets[i % len(subsets)])
    for batch in range(3):
        post(port, "/v1/events", {"events": script_events(args, batch)})
        read()
        read(subsets[(3 + batch) % len(subsets)])
    return trace


def run_load(port: int, args: argparse.Namespace,
             subsets: list[list[int]]) -> dict:
    """The closed-loop mixed load; returns throughput/latency figures."""
    read_latencies: list[float] = []
    writes = 0
    errors: list[str] = []
    lock = threading.Lock()

    def client(client_id: int) -> None:
        nonlocal writes
        import numpy as np

        rng = np.random.default_rng(args.seed + 31 * (client_id + 1))
        local_reads: list[float] = []
        local_writes = 0
        for i in range(args.requests):
            try:
                if rng.random() < args.read_ratio:
                    subset = subsets[int(rng.integers(0, len(subsets)))]
                    t0 = time.perf_counter()
                    post(port, "/v1/recommend", {
                        "k": args.k, "max_groups": args.groups,
                        "user_ids": subset,
                    })
                    local_reads.append(time.perf_counter() - t0)
                else:
                    post(port, "/v1/events", {"events": [{
                        "kind": "rating",
                        "user": int(rng.integers(0, args.users)),
                        "item": int(rng.integers(0, args.items)),
                        "score": float(rng.integers(1, 6)),
                    }]})
                    local_writes += 1
            except Exception as exc:  # noqa: BLE001 - collected, reported
                with lock:
                    errors.append(f"client {client_id} request {i}: {exc}")
                return
        with lock:
            read_latencies.extend(local_reads)
            writes += local_writes

    threads = [
        threading.Thread(target=client, args=(i,), daemon=True)
        for i in range(args.clients)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    seconds = time.perf_counter() - start
    if errors:
        raise RuntimeError("load clients failed: " + "; ".join(errors[:3]))
    return {
        "seconds": seconds,
        "reads": len(read_latencies),
        "writes": writes,
        "read_throughput": len(read_latencies) / seconds,
        "p50": percentile(read_latencies, 50),
        "p99": percentile(read_latencies, 99),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--users", type=int, default=2000,
                        help="instance size in users (default: 2000)")
    parser.add_argument("--items", type=int, default=300,
                        help="instance size in items (default: 300)")
    parser.add_argument("--store", default="dense",
                        choices=["dense", "sparse"],
                        help="rating storage (default: dense)")
    parser.add_argument("--k-max", type=int, default=20, dest="k_max",
                        help="index width (default: 20)")
    parser.add_argument("--k", type=int, default=10,
                        help="recommend request k (default: 10)")
    parser.add_argument("--groups", type=int, default=16,
                        help="recommend group budget (default: 16)")
    parser.add_argument("--shards", type=int, default=8,
                        help="service shards (default: 8)")
    parser.add_argument("--replicas", default="0,1,2",
                        help="comma-separated replica counts to sweep "
                             "(0 = single-process baseline; default: 0,1,2)")
    parser.add_argument("--clients", type=int, default=8,
                        help="closed-loop client threads (default: 8)")
    parser.add_argument("--requests", type=int, default=40,
                        help="requests per client (default: 40)")
    parser.add_argument("--read-ratio", type=float, default=0.9,
                        dest="read_ratio",
                        help="fraction of requests that are reads "
                             "(default: 0.9)")
    parser.add_argument("--subsets", type=int, default=160,
                        help="distinct user_ids subsets the reads cycle "
                             "through; > the 128-entry result memo keeps "
                             "reads compute-bound (default: 160)")
    parser.add_argument("--replica-inflight", type=int, default=2,
                        dest="replica_inflight",
                        help="per-replica in-flight cap (default: 2)")
    parser.add_argument("--queue-depth", type=int, default=256,
                        dest="queue_depth",
                        help="routing queue depth (default: 256)")
    parser.add_argument("--min-scaling", type=float, default=1.0,
                        dest="min_scaling",
                        help="required best-multi-replica/single-process "
                             "read-throughput ratio on multi-core hosts "
                             "(default: 1.0; 0 disables the gate)")
    parser.add_argument("--seed", type=int, default=0, help="instance seed")
    args = parser.parse_args(argv)

    replica_counts = [int(r) for r in str(args.replicas).split(",") if r != ""]
    if 0 not in replica_counts:
        replica_counts = [0] + replica_counts
    instance = (
        f"{args.users}x{args.items} {args.store}, k_max={args.k_max}, "
        f"clients={args.clients}"
    )
    cores = usable_cores()
    print(f"bench_load: {instance} ({cores} usable cores)")
    subsets = make_subsets(args)

    baseline_trace = None
    results: dict[int, dict] = {}
    failures: list[str] = []
    entries: list[dict] = []
    for replicas in replica_counts:
        proc, port = start_server(args, replicas)
        try:
            trace = parity_trace(port, args, subsets)
            if baseline_trace is None:
                baseline_trace = trace
            elif trace != baseline_trace:
                mismatch = sum(
                    1 for a, b in zip(trace, baseline_trace) if a != b
                )
                failures.append(
                    f"{replicas}-replica responses differ from single-process "
                    f"serving in {mismatch}/{len(trace)} scripted reads"
                )
            metrics_before = fetch_metrics(port)
            load = run_load(port, args, subsets)
            metrics_after = fetch_metrics(port)
        finally:
            stop_server(proc)
        recommend_key = 'repro_http_request_seconds{route="recommend"}'
        check = cross_check_latency(
            load["p50"], load["p99"],
            hist_delta(metrics_before, metrics_after, recommend_key),
            failures, f"replicas={replicas}",
        )
        split = {}
        if replicas:
            for metric, key in (("queue_wait", "repro_pool_queue_wait_seconds"),
                                ("service_time",
                                 "repro_pool_replica_call_seconds")):
                d = hist_delta(metrics_before, metrics_after, key)
                if d["count"] > 0:
                    split[f"{metric}_mean"] = d["sum"] / d["count"]
        results[replicas] = load
        parity = "parity ok" if not failures else "PARITY MISMATCH"
        split_text = ""
        if split:
            split_text = " | " + " ".join(
                f"{name.replace('_mean', '')} {value * 1000:.2f} ms"
                for name, value in sorted(split.items())
            )
        print(
            f"  replicas={replicas}: {load['read_throughput']:7.1f} reads/s "
            f"({load['reads']} reads, {load['writes']} writes in "
            f"{load['seconds']:.1f}s) | p50 {load['p50'] * 1000:6.1f} ms | "
            f"p99 {load['p99'] * 1000:6.1f} ms | {parity}{split_text}"
        )
        common = {
            "replicas": replicas,
            "clients": args.clients,
            "read_ratio": args.read_ratio,
        }
        entries.extend([
            bench_entry(instance, load["seconds"], backend="numpy",
                        store=args.store, metric="load_read_throughput",
                        requests_per_second=load["read_throughput"],
                        reads=load["reads"], writes=load["writes"], **common),
            bench_entry(instance, load["p50"], backend="numpy",
                        store=args.store, metric="load_read_p50",
                        k=args.k, max_groups=args.groups,
                        server_p50_le=check.get("server_p50_le"), **common),
            bench_entry(instance, load["p99"], backend="numpy",
                        store=args.store, metric="load_read_p99",
                        k=args.k, max_groups=args.groups,
                        server_p99_le=check.get("server_p99_le"), **common),
        ])
        if split:
            entries.append(
                bench_entry(instance, load["seconds"], backend="numpy",
                            store=args.store, metric="load_latency_split",
                            **split, **common)
            )

    single = results.get(0)
    multi = {r: v for r, v in results.items() if r > 0}
    physical_cap = cores <= 1
    scaling = None
    if single and multi:
        best_replicas, best = max(
            multi.items(), key=lambda item: item[1]["read_throughput"]
        )
        scaling = best["read_throughput"] / single["read_throughput"]
        print(
            f"  scaling: best multi-replica ({best_replicas} replicas) = "
            f"{scaling:.2f}x single-process read throughput"
        )
        if physical_cap:
            print(
                "  note: single-core host — replica parallelism cannot beat "
                "one process on compute-bound reads here; scaling recorded, "
                "not gated (physical_cap)"
            )
        elif args.min_scaling and scaling < args.min_scaling:
            failures.append(
                f"multi-replica read throughput only {scaling:.2f}x the "
                f"single-process baseline (required {args.min_scaling:.2f}x)"
            )
        for entry in entries:
            if entry["metric"] == "load_read_throughput":
                entry["scaling_vs_single"] = scaling
                entry["physical_cap"] = physical_cap

    path = merge_bench_json("service", entries, "load_")
    print(f"  timings written to {path}")

    if failures:
        print("FAIL: " + "; ".join(failures), file=sys.stderr)
        return 1
    counts = ", ".join(str(r) for r in replica_counts)
    print(f"OK: parity held across replica counts [{counts}]"
          + (f", scaling {scaling:.2f}x" if scaling is not None else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
