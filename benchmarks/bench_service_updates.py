#!/usr/bin/env python
"""Service bench: incremental maintenance and serve latency vs full rebuild.

Measures, on one bench instance (default: the 100k-user x 1k-item sparse
instance), the cost of keeping the serving stack fresh under a stream of
rating updates:

* **full rebuild** — ``TopKIndex.build`` over the whole store, the price
  the batch pipeline pays per update today;
* **incremental batch** — ``FormationService.apply_updates`` for a batch
  of random upserts/deletes (store write + per-user index repair + shard
  invalidation).  The headline number is the *speedup* of incremental
  maintenance over a full rebuild, gated at ``--min-speedup`` (default 5x);
* **recommend latency** — p50/p99 of ``FormationService.recommend`` over a
  mixed workload that interleaves update batches (so requests alternate
  between memo hits, shard-recycled recomputes and cold paths), plus the
  cold full-formation baseline for reference;
* **durable ingestion** — typed events streamed through the WAL-backed
  :class:`~repro.ingest.IngestPipeline` (journal + fsync + fold + apply)
  with a recommend request after every batch: sustained events/s under
  that mixed read/write load and the p99 of the interleaved reads.  The
  pipeline is then reopened over the same directory and the **recovery
  time** (latest snapshot + WAL-tail replay) is recorded; a recovered
  index that differs from the live one fails the bench.

Writes ``BENCH_service.json`` through the shared
:func:`~benchmarks._timing.write_bench_json` schema.

CI runs this at a small scale as a *non-blocking* trend gate
(``check_regression.py --service``); the acceptance-scale run is::

    PYTHONPATH=src python benchmarks/bench_service_updates.py

"""

from __future__ import annotations

import argparse
import shutil
import statistics
import sys
import tempfile
import time

import numpy as np

from _timing import bench_entry, merge_bench_json

from repro.core import FormationEngine, TopKIndex
from repro.datasets.synthetic import synthetic_sparse_store
from repro.datasets import synthetic_yahoo_music
from repro.ingest import (
    Click,
    Completion,
    ExplicitRating,
    IngestPipeline,
    RatingDelete,
)
from repro.recsys import DenseStore
from repro.service import FormationService


def build_store(args: argparse.Namespace):
    """The bench instance as a mutable store."""
    if args.store == "sparse":
        return synthetic_sparse_store(
            args.users, args.items, density=args.density, rng=args.seed
        )
    matrix = synthetic_yahoo_music(args.users, args.items, rng=args.seed)
    return DenseStore(matrix.values, scale=matrix.scale)


def random_batch(rng, n_users, n_items, size):
    """One update batch: ~90% upserts, ~10% deletes."""
    n_del = max(1, size // 10)
    upserts = list(
        zip(
            rng.integers(0, n_users, size=size - n_del).tolist(),
            rng.integers(0, n_items, size=size - n_del).tolist(),
            rng.integers(1, 6, size=size - n_del).astype(float).tolist(),
        )
    )
    deletes = list(
        zip(
            rng.integers(0, n_users, size=n_del).tolist(),
            rng.integers(0, n_items, size=n_del).tolist(),
        )
    )
    return upserts, deletes


def percentile(samples, q):
    """Nearest-rank percentile of a sample list."""
    ordered = sorted(samples)
    idx = min(len(ordered) - 1, max(0, int(round(q / 100 * len(ordered) - 0.5))))
    return ordered[idx]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--users", type=int, default=100_000,
                        help="instance size in users (default: 100000)")
    parser.add_argument("--items", type=int, default=1000,
                        help="instance size in items (default: 1000)")
    parser.add_argument("--density", type=float, default=0.02,
                        help="explicit-rating density for --store sparse "
                             "(default: 0.02)")
    parser.add_argument("--store", default="sparse", choices=["dense", "sparse"],
                        help="rating storage backing the service (default: sparse)")
    parser.add_argument("--k-max", type=int, default=20, dest="k_max",
                        help="index width / largest served k (default: 20)")
    parser.add_argument("--k", type=int, default=10,
                        help="recommend request k (default: 10)")
    parser.add_argument("--groups", type=int, default=64,
                        help="recommend request group budget (default: 64)")
    parser.add_argument("--shards", type=int, default=8,
                        help="service shards (default: 8)")
    parser.add_argument("--batches", type=int, default=10,
                        help="update batches timed (default: 10)")
    parser.add_argument("--batch-size", type=int, default=1000, dest="batch_size",
                        help="updates per batch (default: 1000)")
    parser.add_argument("--requests", type=int, default=40,
                        help="recommend requests in the latency loop (default: 40)")
    parser.add_argument("--min-speedup", type=float, default=5.0,
                        help="required full-rebuild/incremental-batch ratio "
                             "(default: 5.0; 0 disables the gate)")
    parser.add_argument("--event-batches", type=int, default=8,
                        dest="event_batches",
                        help="typed-event batches for the durable-ingest "
                             "section (default: 8; 0 skips the section)")
    parser.add_argument("--event-batch-size", type=int, default=500,
                        dest="event_batch_size",
                        help="events per durable batch (default: 500)")
    parser.add_argument("--seed", type=int, default=0, help="instance seed")
    args = parser.parse_args(argv)

    instance = (
        f"{args.users}x{args.items} {args.store}, k_max={args.k_max}, "
        f"batch={args.batch_size}"
    )
    print(f"bench_service_updates: {instance}")
    store = build_store(args)
    rng = np.random.default_rng(args.seed + 1)

    # Full rebuild baseline: what every update batch costs without the
    # incremental index (best of 2 to absorb warmup).
    rebuild_seconds = float("inf")
    for _ in range(2):
        t0 = time.perf_counter()
        TopKIndex.build(store, args.k_max)
        rebuild_seconds = min(rebuild_seconds, time.perf_counter() - t0)
    print(f"  full index rebuild: {rebuild_seconds * 1000:8.1f} ms")

    service = FormationService(store, k_max=args.k_max, shards=args.shards)

    # Incremental update batches through the full service path.
    batch_times = []
    repaired = skipped = 0
    for _ in range(args.batches):
        upserts, deletes = random_batch(
            rng, service.index.n_users, args.items, args.batch_size
        )
        t0 = time.perf_counter()
        stats = service.apply_updates(upserts=upserts, deletes=deletes)
        batch_times.append(time.perf_counter() - t0)
        repaired += stats["repaired_users"]
        skipped += stats["skipped_updates"]
    batch_mean = statistics.mean(batch_times)
    speedup = rebuild_seconds / batch_mean
    updates_per_second = args.batch_size / batch_mean
    print(
        f"  incremental batch ({args.batch_size} updates): "
        f"mean {batch_mean * 1000:8.1f} ms | {updates_per_second:,.0f} updates/s | "
        f"{speedup:.1f}x faster than rebuild "
        f"({repaired} rows repaired, {skipped} skipped)"
    )

    # Cold full-formation baseline (index rebuild + formation per request).
    engine = FormationEngine("numpy")
    t0 = time.perf_counter()
    cold_index = TopKIndex.build(store, args.k_max)
    engine.run(store, args.groups, args.k, "lm", "min", topk=cold_index)
    cold_seconds = time.perf_counter() - t0
    print(f"  cold rebuild+formation baseline: {cold_seconds * 1000:8.1f} ms")

    # Serve-latency loop: one update batch every 4 requests, so the mix
    # covers memo hits, shard-recycled recomputes and fresh versions.
    latencies = []
    for i in range(args.requests):
        if i % 4 == 3:
            upserts, deletes = random_batch(
                rng, service.index.n_users, args.items, args.batch_size
            )
            service.apply_updates(upserts=upserts, deletes=deletes)
        t0 = time.perf_counter()
        service.recommend(k=args.k, max_groups=args.groups)
        latencies.append(time.perf_counter() - t0)
    p50 = percentile(latencies, 50)
    p99 = percentile(latencies, 99)
    print(
        f"  recommend latency over {args.requests} requests: "
        f"p50 {p50 * 1000:7.1f} ms | p99 {p99 * 1000:7.1f} ms "
        f"(stats: {service.stats()['result_hits']} memo hits, "
        f"{service.stats()['shards_recycled']} shards recycled)"
    )

    # Durable ingestion: typed events through the WAL-backed pipeline,
    # with a read interleaved after every batch, then timed recovery.
    durable_entries = []
    failures = []
    if args.event_batches > 0:
        wal_root = tempfile.mkdtemp(prefix="bench-wal-")

        def factory(state):
            if state is None:
                return service  # first open wraps the live service
            recovered = FormationService(
                state.store, k_max=state.k_max, shards=args.shards,
                base_index=TopKIndex(
                    state.index_items, state.index_values, state.store.n_items
                ),
            )
            recovered.index.adopt_state(
                state.version, state.removed, state.staleness
            )
            return recovered

        # Cadence deliberately does not divide the batch count, so the
        # recovery timed below replays a real WAL tail past the snapshot.
        snapshot_every = max(1, args.event_batches // 2 + 1)
        pipeline = IngestPipeline.open(
            wal_root, factory, snapshot_every=snapshot_every
        )

        def random_events(n):
            events = []
            for _ in range(n):
                user = int(rng.integers(0, service.index.n_users))
                item = int(rng.integers(0, args.items))
                roll = rng.random()
                if roll < 0.7:
                    events.append(
                        ExplicitRating(user, item, float(rng.integers(1, 6)))
                    )
                elif roll < 0.8:
                    events.append(RatingDelete(user, item))
                elif roll < 0.9:
                    events.append(Click(user, item))
                else:
                    events.append(
                        Completion(user, item, float(rng.integers(0, 101)) / 100)
                    )
            return events

        read_latencies = []
        total_events = 0
        loop_start = time.perf_counter()
        for _ in range(args.event_batches):
            events = random_events(args.event_batch_size)
            pipeline.ingest(events)
            total_events += len(events)
            t0 = time.perf_counter()
            service.recommend(k=args.k, max_groups=args.groups)
            read_latencies.append(time.perf_counter() - t0)
        loop_seconds = time.perf_counter() - loop_start
        events_per_second = total_events / loop_seconds
        mixed_p99 = percentile(read_latencies, 99)
        print(
            f"  durable ingest ({total_events} events, fsync every batch, "
            f"1 read/batch): {events_per_second:,.0f} events/s sustained | "
            f"read p99 {mixed_p99 * 1000:7.1f} ms"
        )

        pipeline.close()
        t0 = time.perf_counter()
        recovered_pipeline = IngestPipeline.open(
            wal_root, factory, snapshot_every=snapshot_every
        )
        recovery_seconds = time.perf_counter() - t0
        recovery = recovered_pipeline.recovery or {}
        print(
            f"  recovery (snapshot seq {recovery.get('snapshot_seq', 0)} + "
            f"{recovery.get('batches_replayed', 0)} batches replayed): "
            f"{recovery_seconds * 1000:8.1f} ms"
        )
        live_index = service.index
        recovered_index = recovered_pipeline.service.index
        if not (
            np.array_equal(recovered_index.items, live_index.items)
            and np.array_equal(recovered_index.values, live_index.values)
        ):
            failures.append(
                "recovered index differs from the live index bit-for-bit"
            )
        recovered_pipeline.service.close()
        recovered_pipeline.close()
        shutil.rmtree(wal_root, ignore_errors=True)

        durable_entries = [
            bench_entry(instance, loop_seconds, backend="numpy",
                        store=args.store, metric="durable_ingest_mixed",
                        batch_size=args.event_batch_size,
                        events_per_second=events_per_second),
            bench_entry(instance, mixed_p99, backend="numpy", store=args.store,
                        metric="mixed_load_recommend_p99", k=args.k,
                        max_groups=args.groups),
            bench_entry(instance, recovery_seconds, backend="numpy",
                        store=args.store, metric="recovery_time",
                        batches_replayed=recovery.get("batches_replayed", 0)),
        ]

    entries = [
        bench_entry(instance, rebuild_seconds, backend="numpy", store=args.store,
                    metric="full_index_rebuild"),
        bench_entry(instance, batch_mean, backend="numpy", store=args.store,
                    metric="incremental_batch_mean", batch_size=args.batch_size,
                    updates_per_second=updates_per_second, speedup=speedup),
        bench_entry(instance, cold_seconds, backend="numpy", store=args.store,
                    metric="cold_rebuild_and_formation", k=args.k,
                    max_groups=args.groups),
        bench_entry(instance, p50, backend="numpy", store=args.store,
                    metric="recommend_p50", k=args.k, max_groups=args.groups),
        bench_entry(instance, p99, backend="numpy", store=args.store,
                    metric="recommend_p99", k=args.k, max_groups=args.groups),
    ]
    entries.extend(durable_entries)
    # The load harness (bench_load.py) shares this file and owns the
    # "load_" metric namespace; merge so neither bench clobbers the other.
    path = merge_bench_json("service", entries, ("load_", "obs_"), owns_prefix=False)
    print(f"  timings written to {path}")

    if args.min_speedup and speedup < args.min_speedup:
        failures.append(
            f"incremental updates only {speedup:.2f}x faster than a full "
            f"rebuild (required {args.min_speedup:.2f}x)"
        )
    if failures:
        print("FAIL: " + "; ".join(failures), file=sys.stderr)
        return 1
    print(f"OK: incremental maintenance {speedup:.1f}x faster than full rebuild")
    return 0


if __name__ == "__main__":
    sys.exit(main())
