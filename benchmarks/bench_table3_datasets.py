"""Table 3: dataset descriptions (paper statistics vs synthetic stand-ins)."""

from __future__ import annotations

from conftest import report

from repro.datasets import synthetic_yahoo_music
from repro.experiments import table3


def test_table3_generation_runtime(benchmark):
    """Time generating a quality-experiment-sized synthetic Yahoo! matrix."""
    matrix = benchmark(synthetic_yahoo_music, 200, 100, 1.0, 0)
    assert matrix.is_complete


def test_table3_reproduce_rows(benchmark):
    """Regenerate Table 3 and check the paper's headline statistics appear."""
    rows = benchmark.pedantic(
        table3, kwargs=dict(synthetic_n_users=500, synthetic_n_items=200, seed=0),
        rounds=1, iterations=1,
    )
    report("Table 3: dataset descriptions", rows)
    paper_yahoo = next(row for row in rows if "Yahoo" in row["dataset"] and "paper" in row["dataset"])
    assert paper_yahoo["n_users"] == 200_000
    paper_movielens = next(row for row in rows if "MovieLens" in row["dataset"] and "paper" in row["dataset"])
    assert paper_movielens["n_items"] == 10_681
    synthetic = [row for row in rows if "synthetic" in row["dataset"]]
    assert len(synthetic) == 2
