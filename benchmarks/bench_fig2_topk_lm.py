"""Figure 2(a-b): objective value vs top-k under LM-Min and LM-Sum."""

from __future__ import annotations

from conftest import report

from repro.core import grd_lm_min, grd_lm_sum
from repro.experiments import figure2


def test_fig2_grd_lm_min_topk_runtime(benchmark, yahoo_quality):
    """Time GRD-LM-MIN with a deeper list (k=25) on the quality instance."""
    result = benchmark(grd_lm_min, yahoo_quality, 10, 25)
    assert result.k == 25


def test_fig2_grd_lm_sum_topk_runtime(benchmark, yahoo_quality):
    """Time GRD-LM-SUM with a deeper list (k=25) on the quality instance."""
    result = benchmark(grd_lm_sum, yahoo_quality, 10, 25)
    assert result.k == 25


def test_fig2_reproduce_series(benchmark, yahoo_quality):
    """Regenerate Figure 2 and check the Min-vs-Sum trends against the paper."""
    panels = benchmark.pedantic(
        figure2, kwargs=dict(scale="bench", seed=0), rounds=1, iterations=1
    )
    report("Figure 2: objective vs top-k (LM-Min and LM-Sum)", panels)
    min_panel, sum_panel = panels
    grd_min = min_panel.series_for("GRD-LM-MIN").y_values
    grd_sum = sum_panel.series_for("GRD-LM-SUM").y_values
    # Min aggregation: deeper lists can only lower the bottom item's score.
    assert grd_min[-1] <= grd_min[0]
    # Sum aggregation: deeper lists accumulate more score.
    assert grd_sum[-1] >= grd_sum[0]
    # GRD beats the baseline throughout.
    for panel in panels:
        algorithms = panel.algorithms()
        grd_name = next(a for a in algorithms if a.startswith("GRD"))
        baseline_name = next(a for a in algorithms if a.startswith("Baseline"))
        grd = panel.series_for(grd_name).y_values
        baseline = panel.series_for(baseline_name).y_values
        assert sum(grd) >= sum(baseline)
