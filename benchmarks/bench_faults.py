#!/usr/bin/env python
"""Chaos harness: seeded fault schedules against a real ``repro serve``.

Four legs, each driving a subprocess server through a deterministic fault
schedule (``REPRO_FAULTS`` grammar / replica ``kill -9``) and holding one
**blocking invariant: every successful response must be bit-identical to
fault-free serving** (bookkeeping stripped via
:func:`repro.service.pool.canonical_response`).  Faults may cost
availability — they must never change an answer.

* **read_parity** — scripted reads against ``--replicas 2`` while replica
  workers are SIGKILLed at scripted points; every answered read must match
  the single-process reference, and the pool must return to full strength.
* **degraded** — ``wal.fsync=enospc@window:2:3`` breaks the disk under a
  durable writer: the failed write gets a structured ``503
  degraded_read_only``, reads keep serving, ``/v1/healthz`` exposes the
  state machine, and the probe auto-recovers.  Final state must equal a
  fault-free server that applied exactly the *acknowledged* writes.
* **torn_tail** — ``kill -9`` on a durable server, garbage appended to the
  WAL tail, restart: recovery must land on the acknowledged state, with
  the recovery time recorded.
* **crash_loop** — ``pool.spawn=io@window:2:4`` makes the first three
  respawn attempts fail: the loop must be paced by exponential backoff,
  stay within the respawn budget, and recover when the window expires.

Availability, error taxonomy, degraded enter/exit latency and recovery
times land in ``BENCH_faults.json``.  CI runs this at a tiny scale through
``check_regression.py --service``-style smoke; the acceptance run is::

    PYTHONPATH=src python benchmarks/bench_faults.py

"""

from __future__ import annotations

import argparse
import json
import os
import re
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

from _timing import bench_entry, merge_bench_json

from repro.service.pool import canonical_response


def _serve_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH", "")) if p
    )
    return env


def start_server(args: argparse.Namespace, extra: list[str],
                 faults: str | None = None):
    """Boot one ``repro serve`` subprocess; return ``(proc, port)``."""
    cmd = [
        sys.executable, "-m", "repro.service.cli", "serve",
        "--users", str(args.users), "--items", str(args.items),
        "--store", args.store, "--seed", str(args.seed),
        "--k-max", str(args.k_max), "--shards", str(args.shards),
        "--port", "0", "--batch-window", "0.005", *extra,
    ]
    if faults:
        cmd += ["--faults", faults, "--faults-seed", str(args.seed)]
    proc = subprocess.Popen(
        cmd, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=_serve_env(),
    )
    port = None
    deadline = time.time() + 60
    while time.time() < deadline and port is None:
        line = proc.stdout.readline()
        if not line and proc.poll() is not None:
            break
        match = re.search(r"listening on http://[^:]+:(\d+)", line)
        if match:
            port = int(match.group(1))
    if port is None:
        proc.kill()
        raise RuntimeError("server never came up")
    return proc, port


def stop_server(proc) -> None:
    """SIGTERM the server and require a clean (exit 0) shutdown."""
    proc.send_signal(signal.SIGTERM)
    rc = proc.wait(timeout=60)
    tail = proc.stdout.read()
    if rc != 0 or "Traceback" in tail:
        raise RuntimeError(f"server exited uncleanly (rc={rc}):\n{tail}")


def request(port: int, path: str, body: dict | None = None,
            timeout: float = 30.0):
    """``(status, payload)`` of one JSON request; HTTP errors decoded."""
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=data,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return resp.status, json.load(resp)


class Taxonomy:
    """Success/error bookkeeping for one leg's request stream."""

    def __init__(self) -> None:
        self.successes = 0
        self.errors: dict[str, int] = {}

    def record_error(self, exc: Exception) -> None:
        """Classify one failed request by its structured error code."""
        if isinstance(exc, urllib.error.HTTPError):
            try:
                code = json.load(exc)["error"]["code"]
            except Exception:  # noqa: BLE001 - unstructured error body
                code = f"http_{exc.code}"
            key = f"{exc.code}:{code}"
        else:
            key = "connection"
        self.errors[key] = self.errors.get(key, 0) + 1

    @property
    def total(self) -> int:
        return self.successes + sum(self.errors.values())

    @property
    def availability(self) -> float:
        return self.successes / self.total if self.total else 0.0


def replica_pids(parent_pid: int) -> list[int]:
    """PIDs of a serve process's replica workers (via /proc)."""
    pids = []
    for entry in os.listdir("/proc"):
        if not entry.isdigit():
            continue
        try:
            with open(f"/proc/{entry}/stat", "r") as handle:
                stat = handle.read()
            ppid = int(stat.rsplit(")", 1)[1].split()[1])
            if ppid != parent_pid:
                continue
            with open(f"/proc/{entry}/cmdline", "rb") as handle:
                cmdline = handle.read().replace(b"\0", b" ")
            if b"tracker" in cmdline:
                continue
            pids.append(int(entry))
        except (OSError, IndexError, ValueError):
            continue
    return pids


def read_params(args: argparse.Namespace, i: int) -> dict:
    """The deterministic read request ``i`` of the scripted workload."""
    import numpy as np

    if i % 3 == 0:
        return {"k": args.k, "max_groups": args.groups}
    rng = np.random.default_rng(args.seed + 71 * i)
    size = max(6, min(40, args.users // 5))
    subset = sorted(rng.choice(args.users, size=size, replace=False).tolist())
    return {"k": args.k, "max_groups": args.groups, "user_ids": subset}


def write_body(args: argparse.Namespace, batch: int) -> dict:
    """The deterministic event batch ``batch`` of the scripted workload."""
    import numpy as np

    rng = np.random.default_rng(args.seed + 5000 + batch)
    return {"events": [
        {
            "kind": "rating",
            "user": int(rng.integers(0, args.users)),
            "item": int(rng.integers(0, args.items)),
            "score": float(rng.integers(1, 6)),
        }
        for _ in range(16)
    ]}


def wait_for(predicate, timeout: float, message: str) -> float:
    """Poll ``predicate`` until truthy; return the seconds it took."""
    start = time.monotonic()
    deadline = start + timeout
    while True:
        if predicate():
            return time.monotonic() - start
        if time.monotonic() > deadline:
            raise RuntimeError(message)
        time.sleep(0.05)


# --------------------------------------------------------------------- #
# Legs
# --------------------------------------------------------------------- #


def leg_read_parity(args, failures, entries) -> None:
    """Replica kills under scripted reads: answered == fault-free, always."""
    n_reads = args.reads
    proc, port = start_server(args, [])
    try:
        reference = [
            canonical_response(request(port, "/v1/recommend",
                                       read_params(args, i))[1])
            for i in range(n_reads)
        ]
    finally:
        stop_server(proc)

    proc, port = start_server(args, ["--replicas", "2",
                                     "--heartbeat-interval", "0.1"])
    taxonomy = Taxonomy()
    kills = 0
    mismatches = 0
    start = time.monotonic()
    try:
        kill_points = {n_reads // 3, (2 * n_reads) // 3}
        for i in range(n_reads):
            if i in kill_points:
                victims = replica_pids(proc.pid)
                if victims:
                    os.kill(victims[kills % len(victims)], signal.SIGKILL)
                    kills += 1
            try:
                _, payload = request(port, "/v1/recommend",
                                     read_params(args, i))
            except Exception as exc:  # noqa: BLE001 - taxonomy records it
                taxonomy.record_error(exc)
                continue
            taxonomy.successes += 1
            if canonical_response(payload) != reference[i]:
                mismatches += 1
        recovery = wait_for(
            lambda: request(port, "/v1/stats")[1]["pool"]["alive"] == 2,
            30, "pool never returned to full strength",
        )
        pool = request(port, "/v1/stats")[1]["pool"]
    finally:
        stop_server(proc)
    seconds = time.monotonic() - start
    if mismatches:
        failures.append(
            f"read_parity: {mismatches}/{taxonomy.successes} answered reads "
            f"differ from fault-free serving"
        )
    print(
        f"  read_parity: {taxonomy.successes}/{taxonomy.total} answered "
        f"({taxonomy.availability * 100:.1f}%) across {kills} replica kills | "
        f"respawns {pool['respawns']} | errors {taxonomy.errors or 'none'}"
    )
    entries.append(bench_entry(
        args.instance, seconds, backend="numpy", store=args.store,
        metric="read_parity_availability", availability=taxonomy.availability,
        answered=taxonomy.successes, requests=taxonomy.total,
        replica_kills=kills, respawns=pool["respawns"],
        pool_recovery_seconds=recovery, errors=taxonomy.errors,
        parity_mismatches=mismatches,
    ))


def leg_degraded(args, failures, entries, wal_root: Path) -> None:
    """ENOSPC window on WAL fsync: 503 writes, live reads, auto-recovery."""
    wal_dir = wal_root / "degraded"
    durable = ["--wal-dir", str(wal_dir), "--fsync-every", "1",
               "--degraded-probe-interval", "0.1"]
    taxonomy = Taxonomy()
    acked_batches: list[int] = []
    proc, port = start_server(args, durable,
                              faults="wal.fsync=enospc@window:2:3")
    try:
        # Write 1 lands (fsync hit 1); write 2 hits the ENOSPC window.
        status, _ = request(port, "/v1/events", write_body(args, 0))
        assert status == 200
        acked_batches.append(0)
        taxonomy.successes += 1

        t_fail = time.monotonic()
        try:
            request(port, "/v1/events", write_body(args, 1))
            failures.append("degraded: the broken-disk write was accepted")
        except urllib.error.HTTPError as exc:
            payload = json.load(exc)
            code = payload.get("error", {}).get("code", f"http_{exc.code}")
            key = f"{exc.code}:{code}"
            taxonomy.errors[key] = taxonomy.errors.get(key, 0) + 1
            if exc.code != 503 or payload["error"]["code"] != "degraded_read_only":
                failures.append(
                    f"degraded: expected 503 degraded_read_only, got "
                    f"{exc.code} {payload}"
                )
        _, health = request(port, "/v1/healthz")
        enter_latency = time.monotonic() - t_fail
        if health["state"] != "degraded_read_only":
            failures.append(f"degraded: healthz state {health['state']!r} "
                            f"while writes were failing")

        # Reads keep serving while the writer is fenced.
        _, read_payload = request(port, "/v1/recommend", read_params(args, 0))
        taxonomy.successes += 1

        recovery = wait_for(
            lambda: request(port, "/v1/healthz")[1]["state"] == "ok",
            30, "degraded mode never auto-recovered",
        )
        status, _ = request(port, "/v1/events", write_body(args, 2))
        assert status == 200
        acked_batches.append(2)
        taxonomy.successes += 1
        final = canonical_response(
            request(port, "/v1/recommend", read_params(args, 0))[1]
        )
        _, metrics = request(port, "/v1/metrics?format=json")
        transitions = {
            d: metrics["counters"].get(
                f'repro_degraded_transitions_total{{direction="{d}"}}', 0)
            for d in ("enter", "exit")
        }
        injected = metrics["counters"].get("repro_faults_injected_total", 0)
    finally:
        stop_server(proc)

    if transitions != {"enter": 1, "exit": 1}:
        failures.append(f"degraded: transition counters {transitions} != "
                        f"one enter + one exit")

    # No wrong answers: a fault-free server that applies exactly the
    # acknowledged writes must answer the final read bit-identically.
    proc, port = start_server(args, [])
    try:
        for batch in acked_batches:
            request(port, "/v1/events", write_body(args, batch))
        reference = canonical_response(
            request(port, "/v1/recommend", read_params(args, 0))[1]
        )
    finally:
        stop_server(proc)
    if final != reference:
        failures.append(
            "degraded: state after recovery differs from a fault-free "
            "server that applied exactly the acknowledged writes"
        )
    print(
        f"  degraded: enter {enter_latency * 1000:.0f} ms after failed "
        f"write, recovered in {recovery:.2f}s | transitions {transitions} | "
        f"injected {injected} | errors {taxonomy.errors}"
    )
    entries.append(bench_entry(
        args.instance, recovery, backend="numpy", store=args.store,
        metric="degraded_recovery", enter_latency_seconds=enter_latency,
        transitions=transitions, faults_injected=injected,
        acked_writes=len(acked_batches), errors=taxonomy.errors,
        availability=taxonomy.availability,
    ))


def leg_torn_tail(args, failures, entries, wal_root: Path) -> None:
    """kill -9 + garbage on the WAL tail: restart recovers acked state."""
    wal_dir = wal_root / "torn"
    durable = ["--wal-dir", str(wal_dir), "--fsync-every", "1"]
    proc, port = start_server(args, durable)
    try:
        for batch in range(5):
            status, _ = request(port, "/v1/events", write_body(args, batch))
            assert status == 200
        before = canonical_response(
            request(port, "/v1/recommend", read_params(args, 0))[1]
        )
    finally:
        proc.kill()  # the crash: no flush, no graceful shutdown
        proc.wait(timeout=30)

    segments = sorted((wal_dir / "wal").glob("wal-*.log"))
    assert segments, "durable server left no WAL segments"
    with segments[-1].open("ab") as handle:
        handle.write(b"\xde\xad\xbe\xef" * 16)  # torn garbage past the tail

    t_restart = time.monotonic()
    proc, port = start_server(args, durable)
    try:
        recovery = time.monotonic() - t_restart
        _, health = request(port, "/v1/healthz")
        after = canonical_response(
            request(port, "/v1/recommend", read_params(args, 0))[1]
        )
    finally:
        stop_server(proc)
    if health["state"] != "ok" or not health["durable"]:
        failures.append(f"torn_tail: unhealthy after restart: {health}")
    if after != before:
        failures.append(
            "torn_tail: recovered state differs from the acknowledged "
            "pre-crash state"
        )
    print(f"  torn_tail: 5 acked writes survived kill -9 + garbled tail | "
          f"restart to serving in {recovery:.2f}s")
    entries.append(bench_entry(
        args.instance, recovery, backend="numpy", store=args.store,
        metric="torn_tail_recovery", acked_writes=5,
        garbage_bytes=64, parity_ok=after == before,
    ))


def leg_crash_loop(args, failures, entries) -> None:
    """Spawn faults crash the respawn loop: backoff-paced, budget-capped."""
    proc, port = start_server(
        args,
        ["--replicas", "1", "--heartbeat-interval", "0.05",
         "--respawn-backoff", "0.05", "--respawn-max-backoff", "0.5",
         "--respawn-budget", "10", "--respawn-min-uptime", "600"],
        faults="pool.spawn=io@window:2:4",
    )
    taxonomy = Taxonomy()
    try:
        _, payload = request(port, "/v1/recommend", read_params(args, 1))
        baseline = canonical_response(payload)
        victims = replica_pids(proc.pid)
        assert len(victims) == 1
        t_kill = time.monotonic()
        os.kill(victims[0], signal.SIGKILL)
        # Spawn hits 2..4 fail by schedule; hit 5 succeeds: exactly one
        # respawn after exactly three backoff-paced failures.
        recovery = wait_for(
            lambda: request(port, "/v1/stats")[1]["pool"]["respawns"] >= 1,
            30, "crash loop never recovered",
        )
        pool = request(port, "/v1/stats")[1]["pool"]
        for i in range(4):
            try:
                _, payload = request(port, "/v1/recommend",
                                     read_params(args, 1))
            except Exception as exc:  # noqa: BLE001 - taxonomy records it
                taxonomy.record_error(exc)
                continue
            taxonomy.successes += 1
            if canonical_response(payload) != baseline:
                failures.append("crash_loop: post-recovery read differs "
                                "from pre-crash serving")
        _, metrics = request(port, "/v1/metrics?format=json")
        backoff_hist = metrics["histograms"].get(
            "repro_pool_respawn_backoff_seconds", {"count": 0, "sum": 0.0})
    finally:
        stop_server(proc)
    elapsed = time.monotonic() - t_kill
    if pool["respawn_failures"] != 3:
        failures.append(
            f"crash_loop: expected exactly 3 failed bring-ups from the "
            f"window:2:4 schedule, saw {pool['respawn_failures']}"
        )
    if pool["respawns"] != 1:
        failures.append(f"crash_loop: {pool['respawns']} respawns != 1")
    if pool["respawn_failures"] + pool["respawns"] > 10:
        failures.append("crash_loop: attempts exceeded the respawn budget")
    # Backoff pacing: attempts at +0, +~0.05, +~0.1, +~0.2 — the loop
    # must not have burned through its four attempts instantaneously.
    if backoff_hist["sum"] < 0.3:
        failures.append(
            f"crash_loop: scheduled backoff sums to {backoff_hist['sum']:.3f}s"
            f" — the loop was not exponentially paced"
        )
    print(
        f"  crash_loop: {pool['respawn_failures']} failed bring-ups, "
        f"then recovery in {recovery:.2f}s | backoff observations "
        f"{backoff_hist['count']} totalling {backoff_hist['sum']:.2f}s"
    )
    entries.append(bench_entry(
        args.instance, recovery, backend="numpy", store=args.store,
        metric="crash_loop_backoff", respawn_failures=pool["respawn_failures"],
        respawns=pool["respawns"], backoff_attempts=backoff_hist["count"],
        backoff_sum_seconds=backoff_hist["sum"], elapsed_seconds=elapsed,
        errors=taxonomy.errors,
    ))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--users", type=int, default=300,
                        help="instance size in users (default: 300)")
    parser.add_argument("--items", type=int, default=60,
                        help="instance size in items (default: 60)")
    parser.add_argument("--store", default="dense",
                        choices=["dense", "sparse"],
                        help="rating storage (default: dense)")
    parser.add_argument("--k-max", type=int, default=10, dest="k_max",
                        help="index width (default: 10)")
    parser.add_argument("--k", type=int, default=5,
                        help="recommend request k (default: 5)")
    parser.add_argument("--groups", type=int, default=8,
                        help="recommend group budget (default: 8)")
    parser.add_argument("--shards", type=int, default=4,
                        help="service shards (default: 4)")
    parser.add_argument("--reads", type=int, default=18,
                        help="scripted reads in the parity leg (default: 18)")
    parser.add_argument("--seed", type=int, default=0,
                        help="instance + fault-schedule seed")
    parser.add_argument("--wal-root", default=None, dest="wal_root",
                        help="directory for the durable legs' WAL trees "
                             "(default: a fresh temp directory)")
    args = parser.parse_args(argv)
    args.instance = (
        f"{args.users}x{args.items} {args.store}, k_max={args.k_max}, "
        f"seed={args.seed}"
    )

    import tempfile

    print(f"bench_faults: {args.instance}")
    failures: list[str] = []
    entries: list[dict] = []
    with tempfile.TemporaryDirectory(prefix="bench-faults-") as tmp:
        wal_root = Path(args.wal_root) if args.wal_root else Path(tmp)
        leg_read_parity(args, failures, entries)
        leg_degraded(args, failures, entries, wal_root)
        leg_torn_tail(args, failures, entries, wal_root)
        leg_crash_loop(args, failures, entries)

    # This bench owns every metric except the overhead gate's namespace
    # (check_regression --faults-overhead shares BENCH_faults.json).
    path = merge_bench_json("faults", entries, "overhead_", owns_prefix=False)
    print(f"  timings written to {path}")
    if failures:
        print("FAIL: " + "; ".join(failures), file=sys.stderr)
        return 1
    print("OK: every answered response was bit-identical to fault-free "
          "serving across all four fault legs")
    return 0


if __name__ == "__main__":
    sys.exit(main())
