"""Shared fixtures and helpers for the benchmark suite.

Every module in this directory regenerates one table or figure of the paper
(see ``DESIGN.md`` for the experiment index).  Each module does two things:

* uses ``pytest-benchmark`` to time the central operation of the experiment
  (the group-formation call the figure's runtime or quality depends on);
* prints the reproduced rows/series — the same numbers the paper plots — so
  running ``pytest benchmarks/ --benchmark-only -s`` yields a textual version
  of every figure and table.

The "bench" experiment scale is used throughout: sweeps keep the ratios of
the paper's sweeps but are sized to finish on a laptop-class container.
"""

from __future__ import annotations

import pytest

from repro.datasets import synthetic_movielens, synthetic_yahoo_music
from repro.experiments import format_experiment, format_table_rows


@pytest.fixture(scope="session")
def yahoo_quality():
    """Yahoo!-Music-like instance at the paper's quality-experiment defaults."""
    return synthetic_yahoo_music(n_users=200, n_items=100, rng=0)


@pytest.fixture(scope="session")
def movielens_quality():
    """MovieLens-like instance at the paper's quality-experiment defaults."""
    return synthetic_movielens(n_users=200, n_items=100, rng=0)


@pytest.fixture(scope="session")
def yahoo_scalability():
    """Yahoo!-Music-like instance at the bench scalability defaults."""
    return synthetic_yahoo_music(n_users=2000, n_items=400, rng=0)


@pytest.fixture(scope="session")
def yahoo_scalability_large():
    """Largest instance of the bench fig4/fig6 user sweeps (4000 x 400)."""
    return synthetic_yahoo_music(n_users=4000, n_items=400, rng=0)


def report(title: str, panels) -> None:
    """Print reproduced figure panels (or table rows) under a banner."""
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")
    if isinstance(panels, list) and panels and isinstance(panels[0], dict):
        print(format_table_rows(panels))
        return
    for panel in panels:
        print(format_experiment(panel))
        print()
