"""Figure 1(a-c): objective value under LM-Max vs #users / #items / #groups.

Times the two algorithms the panel compares at the paper's default quality
instance (200 users, 100 items, 10 groups, k=5) and prints the full
reproduced sweep series.
"""

from __future__ import annotations

from conftest import report

from repro.baselines import baseline_clustering
from repro.core import grd_lm_max
from repro.experiments import figure1


def test_fig1_grd_lm_max_runtime(benchmark, yahoo_quality):
    """Time GRD-LM-MAX on the default quality instance."""
    result = benchmark(grd_lm_max, yahoo_quality, 10, 5)
    assert result.n_groups <= 10


def test_fig1_baseline_lm_max_runtime(benchmark, yahoo_quality):
    """Time Baseline-LM-MAX (clustering) on the default quality instance."""
    result = benchmark(
        baseline_clustering, yahoo_quality, 10, 5,
        semantics="lm", aggregation="max", rng=0,
    )
    assert result.n_groups <= 10


def test_fig1_reproduce_series(benchmark, yahoo_quality):
    """Regenerate and print Figure 1(a-c); check the qualitative shape."""
    panels = benchmark.pedantic(
        figure1, kwargs=dict(scale="bench", seed=0), rounds=1, iterations=1
    )
    report("Figure 1: objective value under LM-Max (Yahoo!-Music-like data)", panels)
    for panel in panels:
        grd = panel.series_for("GRD-LM-MAX")
        baseline = panel.series_for("Baseline-LM-MAX")
        # GRD dominates the clustering baseline at every sweep point.
        assert all(g >= b for g, b in zip(grd.y_values, baseline.y_values))
    # Figure 1(c): the objective grows with the number of allowed groups.
    fig1c = panels[2].series_for("GRD-LM-MAX")
    assert fig1c.y_values[-1] >= fig1c.y_values[0]
