"""Shared helpers for the backend-comparison benches and the CI gate.

One timing protocol and one definition of "backends agree", used by the
fig4/fig6 speedup benches and ``benchmarks/check_regression.py`` alike —
change them here so the bench asserts and the CI gate cannot drift apart.
Kept free of pytest imports so ``check_regression.py`` can run in
environments where only the runtime dependencies are installed.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from pathlib import Path

from repro.core import FormationEngine
from repro.core.grouping import GroupFormationResult


def best_time(
    engine: FormationEngine,
    ratings,
    max_groups: int,
    k: int,
    semantics: str,
    aggregation: str = "min",
    rounds: int = 3,
) -> tuple[float, GroupFormationResult]:
    """(best wall-clock seconds, last result) over ``rounds`` engine runs.

    Best-of-N is the timing protocol shared by the fig4/fig6 backend benches
    and ``check_regression.py`` — change it here, not in the callers, so the
    bench asserts and the CI gate keep measuring the same thing.
    """
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = engine.run(ratings, max_groups, k, semantics, aggregation)
        best = min(best, time.perf_counter() - start)
    return best, result


def best_seconds(fn, rounds: int = 3) -> tuple[float, object]:
    """(best wall-clock seconds, last result) of calling ``fn`` ``rounds`` times.

    The generic form of :func:`best_time` for timed stages that are not an
    engine run (kernel stages, index builds) — one best-of-N protocol for
    every gate, defined here so benches cannot drift apart.
    """
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _git_commit() -> str:
    """Short hash of the checked-out commit ("unknown" outside a git repo)."""
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=Path(__file__).resolve().parent,
            check=True,
        ).stdout.strip()
    except Exception:
        return "unknown"


def bench_entry(
    instance: str,
    seconds: float,
    backend: str,
    store: str = "dense",
    kernels: str | None = None,
    threads: int | None = None,
    **extra,
) -> dict:
    """One machine-readable timing record for :func:`write_bench_json`.

    ``kernels`` (generation) and ``threads`` (compiled-kernel thread count)
    are first-class schema fields so BENCH_kernels.json can carry the
    thread-scaling curve; they are omitted when not applicable rather than
    recorded as nulls.
    """
    entry = {
        "instance": instance,
        "seconds": float(seconds),
        "backend": backend,
        "store": store,
    }
    if kernels is not None:
        entry["kernels"] = kernels
    if threads is not None:
        entry["threads"] = int(threads)
    entry.update(extra)
    return entry


def write_bench_json(name: str, entries: list[dict], directory=None) -> Path:
    """Write ``BENCH_<name>.json`` so perf is tracked across commits/PRs.

    Every bench/gate that measures wall time funnels its records through
    this one writer, giving the perf trajectory a stable schema::

        {"name", "commit", "created_unix",
         "entries": [{"instance", "seconds", "backend", "store", ...}]}

    The output directory defaults to the ``BENCH_OUTPUT_DIR`` environment
    variable, falling back to this ``benchmarks/`` directory.
    """
    directory = Path(
        directory
        or os.environ.get("BENCH_OUTPUT_DIR")
        or Path(__file__).resolve().parent
    )
    directory.mkdir(parents=True, exist_ok=True)
    payload = {
        "name": name,
        "commit": _git_commit(),
        "created_unix": time.time(),
        "entries": entries,
    }
    path = directory / f"BENCH_{name}.json"
    with path.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return path


def merge_bench_json(
    name: str,
    entries: list[dict],
    own_prefix: "str | tuple[str, ...]",
    owns_prefix: bool = True,
    directory=None,
) -> Path:
    """Write ``BENCH_<name>.json``, replacing only this bench's entries.

    Three benches share ``BENCH_service.json`` (the update/recovery
    bench, the load harness and the telemetry-overhead gate); each owns
    a disjoint ``metric`` namespace split by prefix — ``load_`` for the
    harness, ``obs_`` for the overhead gate, the unprefixed remainder
    for the update bench.  This writer preserves every existing entry
    that belongs to the *other* benches and replaces this bench's own
    entries with ``entries`` — so the benches can run in any order, at
    any cadence, without clobbering each other's trend data.

    Parameters mirror :func:`write_bench_json` plus: ``own_prefix`` is
    the metric prefix (or tuple of prefixes) splitting the namespaces
    (e.g. ``"load_"``), and ``owns_prefix`` says which side this caller
    owns — ``True`` means metrics starting with the prefix(es),
    ``False`` means the rest.  Entries outside the caller's side raise
    ``ValueError`` (namespace discipline is what makes the merge safe).
    """
    directory = Path(
        directory
        or os.environ.get("BENCH_OUTPUT_DIR")
        or Path(__file__).resolve().parent
    )

    def owned(metric) -> bool:
        return str(metric).startswith(own_prefix) == owns_prefix

    kept: list[dict] = []
    path = directory / f"BENCH_{name}.json"
    if path.exists():
        try:
            with path.open("r", encoding="utf-8") as handle:
                existing = json.load(handle)
            kept = [
                entry
                for entry in existing.get("entries", [])
                if not owned(entry.get("metric", ""))
            ]
        except (OSError, ValueError):
            kept = []
    for entry in entries:
        if not owned(entry.get("metric", "")):
            raise ValueError(
                f"merge_bench_json(own_prefix={own_prefix!r}, "
                f"owns_prefix={owns_prefix}) got an entry outside its "
                f"namespace: {entry.get('metric')!r}"
            )
    return write_bench_json(name, kept + entries, directory)


def results_identical(a: GroupFormationResult, b: GroupFormationResult) -> bool:
    """Whether two formation results are bit-identical (timings excluded).

    The parity definition the engine promises across backends: same groups
    with the same members, recommended items, floating-point item scores and
    satisfaction, plus the same bookkeeping extras.
    """
    return (
        a.objective == b.objective
        and [g.members for g in a.groups] == [g.members for g in b.groups]
        and [g.items for g in a.groups] == [g.items for g in b.groups]
        and [g.item_scores for g in a.groups] == [g.item_scores for g in b.groups]
        and [g.satisfaction for g in a.groups] == [g.satisfaction for g in b.groups]
        and a.extras["n_intermediate_groups"] == b.extras["n_intermediate_groups"]
        and a.extras["last_group_pseudocode_score"]
        == b.extras["last_group_pseudocode_score"]
    )
