"""Ablation: grouping-key strictness and the Weighted-Sum extension.

DESIGN.md calls out the grouping key as the central design choice separating
the algorithm variants: LM-MIN keys on (top-k sequence, bottom score),
LM-SUM on (sequence, all scores) and AV-* on the sequence alone.  This bench
quantifies the consequences on the same instance — number of intermediate
groups, objective, group-size spread — and times the §6 Weighted-Sum
extension.
"""

from __future__ import annotations

from conftest import report

from repro.core import grd_av, grd_lm
from repro.metrics import five_point_summary


def test_ablation_weighted_sum_runtime(benchmark, yahoo_quality):
    """Time the Weighted-Sum extension (paper §6) under LM."""
    result = benchmark(grd_lm, yahoo_quality, 10, 5, "weighted-sum")
    assert result.aggregation.name == "weighted-sum"


def test_ablation_key_strictness(benchmark, yahoo_quality):
    """Stricter keys produce more intermediate groups and smaller groups."""

    def run_all():
        return {
            "LM-MIN (sequence + bottom score)": grd_lm(yahoo_quality, 10, 5, "min"),
            "LM-SUM (sequence + all scores)": grd_lm(yahoo_quality, 10, 5, "sum"),
            "AV-MIN (sequence only)": grd_av(yahoo_quality, 10, 5, "min"),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for label, result in results.items():
        summary = five_point_summary(result.group_sizes)
        rows.append(
            {
                "variant": label,
                "intermediate_groups": result.extras["n_intermediate_groups"],
                "objective": result.objective,
                "min_size": summary.minimum,
                "median_size": summary.median,
                "max_size": summary.maximum,
            }
        )
    report("Ablation: grouping-key strictness (200 users, 100 items, l=10, k=5)", rows)
    lm_min = results["LM-MIN (sequence + bottom score)"]
    lm_sum = results["LM-SUM (sequence + all scores)"]
    av_min = results["AV-MIN (sequence only)"]
    assert (
        av_min.extras["n_intermediate_groups"]
        <= lm_min.extras["n_intermediate_groups"]
        <= lm_sum.extras["n_intermediate_groups"]
    )
