"""Figure 6(a-c): runtime of AV-Min group formation vs #users / #items / #groups."""

from __future__ import annotations

from conftest import report

from repro.core import grd_av_min
from repro.experiments import figure6


def test_fig6_grd_av_min_scalability_runtime(benchmark, yahoo_scalability):
    """Time GRD-AV-MIN at the bench scalability defaults (2000 x 400)."""
    result = benchmark(grd_av_min, yahoo_scalability, 10, 5)
    assert result.n_users == 2000


def test_fig6_reproduce_series(benchmark):
    """Regenerate Figure 6(a-c) and check the scaling shapes."""
    panels = benchmark.pedantic(
        figure6, kwargs=dict(scale="bench", seed=0), rounds=1, iterations=1
    )
    report("Figure 6: run time under AV-Min (Yahoo!-Music-like data)", panels)
    users_panel, items_panel, groups_panel = panels
    for panel in (users_panel, items_panel, groups_panel):
        grd = panel.series_for("GRD-AV-MIN").y_values
        baseline = panel.series_for("Baseline-AV-MIN").y_values
        assert all(g <= b for g, b in zip(grd, baseline))
    # Runtime is insensitive to the number of items for GRD (paper Fig. 6(b)).
    grd_items = items_panel.series_for("GRD-AV-MIN").y_values
    assert grd_items[-1] <= max(6 * grd_items[0], grd_items[0] + 0.5)
