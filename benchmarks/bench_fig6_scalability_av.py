"""Figure 6(a-c): runtime of AV-Min group formation vs #users / #items / #groups.

Timed runs go through the :class:`~repro.core.engine.FormationEngine`; the
backend-comparison benchmark mirrors the fig4 one for the AV semantics.
"""

from __future__ import annotations

from _timing import bench_entry, best_time, results_identical, write_bench_json
from conftest import report

from repro.core import FormationEngine
from repro.experiments import figure6


def test_fig6_grd_av_min_scalability_runtime(benchmark, yahoo_scalability):
    """Time GRD-AV-MIN through the engine at the bench defaults (2000 x 400)."""
    engine = FormationEngine("numpy")
    result = benchmark(engine.run, yahoo_scalability, 10, 5, "av", "min")
    assert result.n_users == 2000
    assert result.extras["backend"] == "numpy"


def test_fig6_backend_speedup_largest_instance(yahoo_scalability_large):
    """The numpy backend beats the reference backend at the largest fig6 size."""
    timings = {}
    results = {}
    for backend in ("reference", "numpy"):
        timings[backend], results[backend] = best_time(
            FormationEngine(backend), yahoo_scalability_large, 10, 5, "av"
        )
    speedup = timings["reference"] / timings["numpy"]
    print(
        f"\nfig6 largest instance (4000 users): reference "
        f"{timings['reference'] * 1000:.1f} ms, numpy "
        f"{timings['numpy'] * 1000:.1f} ms ({speedup:.1f}x)"
    )
    write_bench_json(
        "fig6_backends",
        [
            bench_entry("fig6 largest instance (4000x400, l=10, k=5)",
                        seconds, backend=backend, semantics="av")
            for backend, seconds in timings.items()
        ],
    )
    assert results_identical(results["reference"], results["numpy"])
    # ~6x measured; 3x assert keeps noisy machines from flaking the bench
    # (the >= 5x acceptance gate is check_regression.py's --min-speedup).
    assert speedup >= 3.0


def test_fig6_execution_plane_parity(yahoo_scalability, tmp_path):
    """The process executor is bit-identical to the engine under AV too.

    AV variants sum member contributions across shard boundaries, so this
    is the path where the integer-rating bit-identity contract of the
    sharded merge actually gets exercised by the process fan-out; the run
    is additionally warmed through a summary
    :class:`~repro.execution.cache.ArtifactCache` and must keep agreeing.
    """
    from repro.core import ShardedFormation

    engine = FormationEngine("numpy")
    _, baseline = best_time(engine, yahoo_scalability, 10, 5, "av")

    cold = ShardedFormation(
        shards=4, workers=2, execution="processes", cache_dir=str(tmp_path)
    )
    cold_result = cold.run(yahoo_scalability, 10, 5, "av", "min")
    assert results_identical(baseline, cold_result)
    assert cold_result.extras["summary_cache_hits"] == 0

    warm = ShardedFormation(shards=4, execution="serial", cache_dir=str(tmp_path))
    warm_result = warm.run(yahoo_scalability, 10, 5, "av", "min")
    assert results_identical(baseline, warm_result)
    assert warm_result.extras["summary_cache_hits"] == 4


def test_fig6_reproduce_series(benchmark):
    """Regenerate Figure 6(a-c) and check the scaling shapes."""
    panels = benchmark.pedantic(
        figure6,
        kwargs=dict(scale="bench", seed=0, backend="numpy"),
        rounds=1,
        iterations=1,
    )
    report("Figure 6: run time under AV-Min (Yahoo!-Music-like data)", panels)
    users_panel, items_panel, groups_panel = panels
    for panel in (users_panel, items_panel, groups_panel):
        grd = panel.series_for("GRD-AV-MIN").y_values
        baseline = panel.series_for("Baseline-AV-MIN").y_values
        assert all(g <= b for g, b in zip(grd, baseline))
    # Runtime is insensitive to the number of items for GRD (paper Fig. 6(b)).
    grd_items = items_panel.series_for("GRD-AV-MIN").y_values
    assert grd_items[-1] <= max(6 * grd_items[0], grd_items[0] + 0.5)
