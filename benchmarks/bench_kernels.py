#!/usr/bin/env python
"""Kernel benchmark: classic vs fast vs compiled parallel on fig4's largest instance.

Times the two stages the kernel layer owns — the ``TopKIndex`` build
(ranking every user's top-k) and step-1 bucketing (grouping users by their
bucket keys) — under every kernel generation, asserts they are
bit-identical, and records the per-stage timings, speedups and the
``parallel`` thread-scaling curve (``--threads`` comma sweep) in
``BENCH_kernels.json``.

The default instance is the paper's Figure 4(a) user-sweep shape at its
largest point: 100,000 users (the paper's scalability default) with the
10k-item catalogue scaled to 1,000 items so the dense instance fits this
container's RAM; fig4(b) shows GRD runtime is flat in the catalogue size,
so the per-stage ratios carry.  ``l`` and ``k`` are the paper defaults
(10, 5) and the variant is GRD-LM-MIN, exactly as in the fig4 benches.

Gate semantics: parity failures always exit non-zero; the speedup floors
only gate when positive (CI runs them non-blocking at smoke scale; the
committed ``BENCH_kernels.json`` is produced by the full-size run).  When
the compiled backend cannot be built (no C compiler) the ``parallel`` legs
and their gate are skipped with a note — never silently::

    PYTHONPATH=src python benchmarks/bench_kernels.py                   # full size
    PYTHONPATH=src python benchmarks/bench_kernels.py --min-speedup 2.0 \
        --min-parallel-speedup 3.0 --min-bucket-speedup 1.5             # acceptance
    PYTHONPATH=src python benchmarks/bench_kernels.py --users 4000 --items 400 \
        --min-speedup 0                                                 # smoke
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from _timing import bench_entry, best_seconds, results_identical, write_bench_json

from repro.core import FormationEngine, TopKIndex, kernels
from repro.core.engine import coerce_store
from repro.datasets import synthetic_yahoo_music


def bucket_partition(inverse, sorted_users, starts):
    """Canonical (enumeration-order-free) form of a bucketing."""
    ends = np.append(starts[1:], sorted_users.size)
    return sorted(tuple(sorted_users[a:b].tolist()) for a, b in zip(starts, ends))


def parse_threads(text: str) -> list[int]:
    """Parse the ``--threads`` comma sweep ("1,2,4,8") into thread counts."""
    counts = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        value = int(part)
        if value < 1:
            raise ValueError(f"thread counts must be >= 1, got {value}")
        counts.append(value)
    if not counts:
        raise ValueError("--threads needs at least one thread count")
    return counts


def time_stages(store, k: int, rounds: int):
    """(timings dict, top-k tables, bucketing, formation result) for one setup."""
    build_seconds, index = best_seconds(lambda: TopKIndex.build(store, k), rounds)
    items_table, scores_table = index.top_k(k)
    # GRD-LM-MIN keys on the item sequence plus the k-th score.
    bucket_seconds, bucketing = best_seconds(
        lambda: kernels.bucketize(items_table, scores_table, "last"), rounds
    )
    timings = {"index_build": build_seconds, "bucketing": bucket_seconds}
    return timings, (items_table, scores_table), bucketing, index


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--users", type=int, default=100_000,
                        help="instance size in users (default: 100000, the "
                             "paper's fig4 scalability default)")
    parser.add_argument("--items", type=int, default=1000,
                        help="instance size in items (default: 1000)")
    parser.add_argument("--groups", type=int, default=10, help="group budget l")
    parser.add_argument("--k", type=int, default=5, help="recommended list length")
    parser.add_argument("--rounds", type=int, default=3,
                        help="timing rounds; the best round counts (default: 3)")
    parser.add_argument("--threads", type=parse_threads, default="1,2,4,8",
                        metavar="T1,T2,...",
                        help="comma-separated thread counts for the parallel "
                             "kernel scaling curve (default: 1,2,4,8)")
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="required combined (build+bucket) classic/fast "
                             "runtime ratio; 0 disables the speedup gate "
                             "(parity always gates)")
    parser.add_argument("--min-parallel-speedup", type=float, default=0.0,
                        dest="min_parallel_speedup",
                        help="required combined fast/parallel runtime ratio at "
                             "the best swept thread count; 0 disables; skipped "
                             "with a note when no C compiler is available")
    parser.add_argument("--min-bucket-speedup", type=float, default=0.0,
                        dest="min_bucket_speedup",
                        help="required classic/fast bucketing-stage ratio (the "
                             "fused-fingerprint micro gate); 0 disables")
    parser.add_argument("--seed", type=int, default=0, help="dataset seed")
    args = parser.parse_args(argv)
    if isinstance(args.threads, str):  # default string bypasses type=
        args.threads = parse_threads(args.threads)

    ratings = synthetic_yahoo_music(
        n_users=args.users, n_items=args.items, rng=args.seed
    )
    store = coerce_store(ratings)
    instance = (
        f"fig4 largest instance ({args.users}x{args.items}, "
        f"l={args.groups}, k={args.k})"
    )
    parallel_ok = kernels.parallel_available()

    timings: dict[str, dict[str, float]] = {}
    tables: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    buckets: dict[str, object] = {}
    results: dict[str, object] = {}
    entries = []
    for mode in ("classic", "fast"):
        with kernels.use_kernels(mode):
            timings[mode], tables[mode], bucketing, index = time_stages(
                store, args.k, args.rounds
            )
            _, results[mode] = best_seconds(
                lambda: FormationEngine("numpy").run(
                    store, args.groups, args.k, "lm", "min", topk=index
                ),
                1,
            )
        buckets[mode] = bucket_partition(*bucketing)
        for stage, seconds in timings[mode].items():
            entries.append(bench_entry(
                instance, seconds, backend="numpy", store="dense",
                kernels=mode, stage=stage,
            ))

    # The parallel generation: one timing pass per swept thread count, all
    # bit-identical; the best-thread pass feeds the combined speedup.
    parallel_curve: dict[int, dict[str, float]] = {}
    if parallel_ok:
        with kernels.use_kernels("parallel"):
            for threads in args.threads:
                with kernels.use_kernel_threads(threads):
                    stage_times, mode_tables, bucketing, index = time_stages(
                        store, args.k, args.rounds
                    )
                parallel_curve[threads] = stage_times
                if "parallel" not in tables:
                    tables["parallel"] = mode_tables
                    buckets["parallel"] = bucket_partition(*bucketing)
                    with kernels.use_kernel_threads(threads):
                        _, results["parallel"] = best_seconds(
                            lambda: FormationEngine("numpy").run(
                                store, args.groups, args.k, "lm", "min", topk=index
                            ),
                            1,
                        )
                elif not (
                    np.array_equal(tables["parallel"][0], mode_tables[0])
                    and np.array_equal(tables["parallel"][1], mode_tables[1])
                ):
                    print(f"\nFAIL: parallel kernels at {threads} threads differ "
                          f"from {args.threads[0]} threads", file=sys.stderr)
                    return 1
                for stage, seconds in stage_times.items():
                    entries.append(bench_entry(
                        instance, seconds, backend="numpy", store="dense",
                        kernels="parallel", threads=threads, stage=stage,
                    ))
        best_threads = min(
            parallel_curve,
            key=lambda t: parallel_curve[t]["index_build"]
            + parallel_curve[t]["bucketing"],
        )
        timings["parallel"] = parallel_curve[best_threads]
    else:
        from repro.core import kernels_cc

        reason = kernels_cc.unavailable_reason() or "unknown"
        print(f"note: compiled parallel backend unavailable ({reason}); "
              f"parallel legs skipped")

    failures = []
    reference = tables["classic"]
    for mode in tables:
        if mode == "classic":
            continue
        if not (
            np.array_equal(reference[0], tables[mode][0])
            and np.array_equal(reference[1], tables[mode][1])
        ):
            failures.append(f"kernel parity: {mode} top-k tables differ from classic")
        if buckets["classic"] != buckets[mode]:
            failures.append(f"kernel parity: {mode} bucket partition differs")
        if not results_identical(results["classic"], results[mode]):
            failures.append(f"kernel parity: {mode} formation result differs")

    combined = {
        mode: timings[mode]["index_build"] + timings[mode]["bucketing"]
        for mode in timings
    }
    speedup = combined["classic"] / combined["fast"]
    build_speedup = timings["classic"]["index_build"] / timings["fast"]["index_build"]
    bucket_speedup = timings["classic"]["bucketing"] / timings["fast"]["bucketing"]
    entries.append(bench_entry(
        instance, combined["fast"], backend="numpy", store="dense",
        kernels="fast", stage="index_build+bucketing", speedup=round(speedup, 2),
    ))

    print(f"{instance}")

    def stage_line(stage: str, label: str) -> str:
        cells = [f"classic {timings['classic'][stage]*1000:8.1f} ms",
                 f"fast {timings['fast'][stage]*1000:8.1f} ms"]
        if "parallel" in timings:
            cells.append(f"parallel {timings['parallel'][stage]*1000:8.1f} ms")
        return f"  {label} " + " | ".join(cells)

    print(stage_line("index_build", "index build:"))
    print(stage_line("bucketing", "bucketing:  "))
    print(f"  fast vs classic: build {build_speedup:.2f}x, "
          f"bucket {bucket_speedup:.2f}x, combined {speedup:.2f}x")

    if parallel_ok:
        parallel_speedup = combined["fast"] / combined["parallel"]
        entries.append(bench_entry(
            instance, combined["parallel"], backend="numpy", store="dense",
            kernels="parallel", threads=best_threads,
            stage="index_build+bucketing",
            speedup=round(combined["classic"] / combined["parallel"], 2),
            speedup_vs_fast=round(parallel_speedup, 2),
        ))
        curve = ", ".join(
            f"{t}t {(c['index_build'] + c['bucketing'])*1000:.1f} ms"
            for t, c in sorted(parallel_curve.items())
        )
        print(f"  parallel scaling: {curve}")
        print(f"  parallel vs fast: {parallel_speedup:.2f}x combined "
              f"(best at {best_threads} threads; "
              f"{combined['classic'] / combined['parallel']:.2f}x vs classic)")
        if (
            args.min_parallel_speedup > 0
            and parallel_speedup < args.min_parallel_speedup
        ):
            failures.append(
                f"parallel/fast combined speedup {parallel_speedup:.2f}x < "
                f"required {args.min_parallel_speedup:.2f}x"
            )

    if args.min_speedup > 0 and speedup < args.min_speedup:
        failures.append(
            f"combined kernel speedup {speedup:.2f}x < required "
            f"{args.min_speedup:.2f}x"
        )
    if args.min_bucket_speedup > 0 and bucket_speedup < args.min_bucket_speedup:
        failures.append(
            f"bucketing-stage speedup {bucket_speedup:.2f}x < required "
            f"{args.min_bucket_speedup:.2f}x (fused-fingerprint micro gate)"
        )

    path = write_bench_json("kernels", entries)
    print(f"timings written to {path}")
    if failures:
        print("\nFAIL:", "; ".join(failures), file=sys.stderr)
        return 1
    print(f"OK: kernel generations bit-identical; combined speedup {speedup:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
