#!/usr/bin/env python
"""Kernel-overhaul benchmark: classic vs fast on the fig4 largest instance.

Times the two stages the kernel layer owns — the ``TopKIndex`` build
(ranking every user's top-k) and step-1 bucketing (grouping users by their
packed key rows) — under both kernel generations, asserts they are
bit-identical, and records the per-stage and combined speedups in
``BENCH_kernels.json``.

The default instance is the paper's Figure 4(a) user-sweep shape at its
largest point: 100,000 users (the paper's scalability default) with the
10k-item catalogue scaled to 1,000 items so the dense instance fits this
container's RAM; fig4(b) shows GRD runtime is flat in the catalogue size,
so the per-stage ratios carry.  ``l`` and ``k`` are the paper defaults
(10, 5) and the variant is GRD-LM-MIN, exactly as in the fig4 benches.

Gate semantics: parity failures always exit non-zero; the combined-speedup
floor only gates when ``--min-speedup`` is positive (CI runs it
non-blocking at smoke scale; the committed ``BENCH_kernels.json`` is
produced by the full-size run, which must record >= 2x)::

    PYTHONPATH=src python benchmarks/bench_kernels.py                   # full size
    PYTHONPATH=src python benchmarks/bench_kernels.py --min-speedup 2.0 # acceptance
    PYTHONPATH=src python benchmarks/bench_kernels.py --users 4000 --items 400 \
        --min-speedup 0                                                 # smoke
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from _timing import bench_entry, best_seconds, results_identical, write_bench_json

from repro.core import FormationEngine, TopKIndex, kernels
from repro.core.engine import coerce_store
from repro.datasets import synthetic_yahoo_music


def bucket_partition(inverse, sorted_users, starts):
    """Canonical (enumeration-order-free) form of a bucketing."""
    ends = np.append(starts[1:], sorted_users.size)
    return sorted(tuple(sorted_users[a:b].tolist()) for a, b in zip(starts, ends))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--users", type=int, default=100_000,
                        help="instance size in users (default: 100000, the "
                             "paper's fig4 scalability default)")
    parser.add_argument("--items", type=int, default=1000,
                        help="instance size in items (default: 1000)")
    parser.add_argument("--groups", type=int, default=10, help="group budget l")
    parser.add_argument("--k", type=int, default=5, help="recommended list length")
    parser.add_argument("--rounds", type=int, default=3,
                        help="timing rounds; the best round counts (default: 3)")
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="required combined (build+bucket) classic/fast "
                             "runtime ratio; 0 disables the speedup gate "
                             "(parity always gates)")
    parser.add_argument("--seed", type=int, default=0, help="dataset seed")
    args = parser.parse_args(argv)

    ratings = synthetic_yahoo_music(
        n_users=args.users, n_items=args.items, rng=args.seed
    )
    store = coerce_store(ratings)
    instance = (
        f"fig4 largest instance ({args.users}x{args.items}, "
        f"l={args.groups}, k={args.k})"
    )

    timings: dict[str, dict[str, float]] = {}
    tables: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    buckets: dict[str, object] = {}
    results: dict[str, object] = {}
    entries = []
    for mode in ("classic", "fast"):
        with kernels.use_kernels(mode):
            build_seconds, index = best_seconds(
                lambda: TopKIndex.build(store, args.k), args.rounds
            )
            items_table, scores_table = index.top_k(args.k)
            # GRD-LM-MIN keys on the item sequence plus the k-th score.
            bucket_seconds, bucketing = best_seconds(
                lambda: kernels.bucketize(items_table, scores_table, "last"),
                args.rounds,
            )
            _, result = best_seconds(
                lambda: FormationEngine("numpy").run(
                    store, args.groups, args.k, "lm", "min", topk=index
                ),
                1,
            )
        timings[mode] = {"index_build": build_seconds, "bucketing": bucket_seconds}
        tables[mode] = (items_table, scores_table)
        buckets[mode] = bucket_partition(*bucketing)
        results[mode] = result
        for stage, seconds in timings[mode].items():
            entries.append(bench_entry(
                instance, seconds, backend="numpy", store="dense",
                kernels=mode, stage=stage,
            ))

    failures = []
    if not (
        np.array_equal(tables["classic"][0], tables["fast"][0])
        and np.array_equal(tables["classic"][1], tables["fast"][1])
    ):
        failures.append("kernel parity: top-k tables differ between generations")
    if buckets["classic"] != buckets["fast"]:
        failures.append("kernel parity: bucket partitions differ between generations")
    if not results_identical(results["classic"], results["fast"]):
        failures.append("kernel parity: formation results differ between generations")

    combined = {
        mode: timings[mode]["index_build"] + timings[mode]["bucketing"]
        for mode in timings
    }
    speedup = combined["classic"] / combined["fast"]
    build_speedup = timings["classic"]["index_build"] / timings["fast"]["index_build"]
    bucket_speedup = timings["classic"]["bucketing"] / timings["fast"]["bucketing"]
    entries.append(bench_entry(
        instance, combined["fast"], backend="numpy", store="dense",
        kernels="fast", stage="index_build+bucketing", speedup=round(speedup, 2),
    ))

    print(f"{instance}")
    print(f"  index build: classic {timings['classic']['index_build']*1000:8.1f} ms | "
          f"fast {timings['fast']['index_build']*1000:8.1f} ms | {build_speedup:5.2f}x")
    print(f"  bucketing:   classic {timings['classic']['bucketing']*1000:8.1f} ms | "
          f"fast {timings['fast']['bucketing']*1000:8.1f} ms | {bucket_speedup:5.2f}x")
    print(f"  combined:    classic {combined['classic']*1000:8.1f} ms | "
          f"fast {combined['fast']*1000:8.1f} ms | {speedup:5.2f}x")

    if args.min_speedup > 0 and speedup < args.min_speedup:
        failures.append(
            f"combined kernel speedup {speedup:.2f}x < required "
            f"{args.min_speedup:.2f}x"
        )

    path = write_bench_json("kernels", entries)
    print(f"timings written to {path}")
    if failures:
        print("\nFAIL:", "; ".join(failures), file=sys.stderr)
        return 1
    print(f"OK: kernel generations bit-identical; combined speedup {speedup:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
