"""Table 4: distribution of average group size (LM / AV x Max / Sum)."""

from __future__ import annotations

from conftest import report

from repro.core import grd_av_sum, grd_lm_sum
from repro.experiments import table4


def test_table4_grd_lm_sum_runtime(benchmark, yahoo_quality):
    """Time GRD-LM-SUM (the strictest grouping key) on the quality instance."""
    result = benchmark(grd_lm_sum, yahoo_quality, 10, 5)
    assert result.n_groups <= 10


def test_table4_reproduce_rows(benchmark):
    """Regenerate Table 4 and check the paper's qualitative claims."""
    rows = benchmark.pedantic(
        table4, kwargs=dict(scale="bench", seed=0), rounds=1, iterations=1
    )
    report("Table 4: distribution of average group size", rows)

    def quantiles(algorithm: str) -> dict[str, float]:
        return {
            row["quantile"]: row["avg_group_size"]
            for row in rows
            if row["algorithm"] == algorithm
        }

    lm_max, lm_sum = quantiles("GRD-LM-MAX"), quantiles("GRD-LM-SUM")
    av_max, av_sum = quantiles("GRD-AV-MAX"), quantiles("GRD-AV-SUM")
    # Five-point summaries are ordered.
    for summary in (lm_max, lm_sum, av_max, av_sum):
        assert summary["Minimum"] <= summary["Median"] <= summary["Maximum"]
    # Paper: AV only needs a shared sequence, so its smallest groups are no
    # smaller than LM's (AV groups vary less in size).
    assert av_max["Minimum"] >= lm_max["Minimum"]
    assert av_sum["Minimum"] >= lm_sum["Minimum"]


def test_table4_av_groups_balanced(yahoo_quality):
    """AV group sizes at the default instance stay reasonably balanced."""
    result = grd_av_sum(yahoo_quality, 10, 5)
    sizes = sorted(result.group_sizes)
    assert sizes[0] >= 1
    assert sizes[-1] <= yahoo_quality.n_users * 0.75
