#!/usr/bin/env python
"""Million-user sharded formation: the sparse data plane's scale proof.

Generates a ``--users x --items`` instance at ``--density`` directly into a
CSR :class:`~repro.recsys.store.SparseStore` (no dense matrix is ever
materialised — the dense equivalent of the default 1M x 10k instance would
need ~80 GB), then forms groups through
:class:`~repro.core.sharded.ShardedFormation` and reports wall time and peak
RSS.  The default configuration is the PR acceptance check::

    PYTHONPATH=src python benchmarks/bench_sharded_scale.py

which must complete with peak RSS < 8 GB.  Results are appended to
``BENCH_sharded_scale.json`` via the shared timing writer.

``--workers`` accepts a comma-separated sweep (e.g. ``--workers 1,2,4,8``):
each worker count is timed separately and lands as its own entry, so the
execution plane's scaling curve is tracked across PRs.  ``--execution``
selects the fan-out strategy (``serial`` / ``threads`` / ``processes`` —
the process pool attaches the CSR store through zero-copy shared memory);
the objective is asserted identical across every sweep point, as the
execution plane promises.  The acceptance speedup check for the process
executor is::

    PYTHONPATH=src python benchmarks/bench_sharded_scale.py \
        --workers 1,8 --execution processes --min-speedup 2.0

Not collected by pytest (no ``test_`` functions) — this is an operator
script, sized in minutes, not a CI gate.
"""

from __future__ import annotations

import argparse
import resource
import sys
import time

from _timing import bench_entry, write_bench_json

from repro.core import ShardedFormation
from repro.datasets import synthetic_sparse_store
from repro.execution import EXECUTION_MODES


def peak_rss_gib() -> float:
    """Peak resident set size of this process in GiB (Linux: ru_maxrss is KiB)."""
    rss_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - ru_maxrss is bytes there
        rss_kib /= 1024.0
    return rss_kib / (1024.0 * 1024.0)


def parse_workers(raw: str) -> list[int]:
    """Parse ``--workers`` (``"4"`` or a comma-separated sweep ``"1,2,4"``)."""
    values = [int(part) for part in str(raw).split(",") if part.strip()]
    if not values or any(value < 1 for value in values):
        raise argparse.ArgumentTypeError(
            f"--workers needs positive integers, got {raw!r}"
        )
    return values


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--users", type=int, default=1_000_000)
    parser.add_argument("--items", type=int, default=10_000)
    parser.add_argument("--density", type=float, default=0.01)
    parser.add_argument("--groups", type=int, default=64, help="group budget l")
    parser.add_argument("--k", type=int, default=5)
    parser.add_argument("--shards", type=int, default=64)
    parser.add_argument("--workers", type=parse_workers, default=[4],
                        help="worker count, or a comma-separated sweep "
                             "(e.g. 1,2,4,8); each point is timed and recorded "
                             "separately (default: 4)")
    parser.add_argument("--execution", default=None, choices=list(EXECUTION_MODES),
                        help="fan-out strategy (default: threads when "
                             "workers > 1, else serial)")
    parser.add_argument("--semantics", default="lm", choices=["lm", "av"])
    parser.add_argument("--aggregation", default="min")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--cache-dir", default=None, dest="cache_dir",
                        help="artifact-cache directory for shard summaries "
                             "(repeat runs over the same instance skip "
                             "summarisation)")
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="fail unless (fewest-workers time) / "
                             "(most-workers time) of the --workers sweep "
                             "reaches this factor (default: 0 = report-only)")
    parser.add_argument("--max-rss-gib", type=float, default=8.0,
                        help="fail if peak RSS exceeds this (default: 8)")
    args = parser.parse_args(argv)

    instance = (
        f"{args.users}x{args.items} @ {args.density:.0%}, "
        f"l={args.groups}, k={args.k}, shards={args.shards}"
    )
    print(f"generating sparse instance: {instance}")
    t0 = time.perf_counter()
    store = synthetic_sparse_store(
        args.users, args.items, density=args.density, rng=args.seed
    )
    gen_seconds = time.perf_counter() - t0
    print(
        f"  generated in {gen_seconds:.1f}s: nnz={store.csr.nnz:,} "
        f"({store.nbytes / 2**30:.2f} GiB CSR; dense would be "
        f"{args.users * args.items * 8 / 2**30:.1f} GiB)"
    )

    entries = []
    timings: dict[int, float] = {}
    objectives: set[float] = set()
    result = None
    for workers in args.workers:
        engine = ShardedFormation(
            shards=args.shards,
            workers=workers,
            execution=args.execution,
            cache_dir=args.cache_dir,
        )
        t0 = time.perf_counter()
        result = engine.run(
            store, args.groups, args.k, args.semantics, args.aggregation
        )
        form_seconds = time.perf_counter() - t0
        rss = peak_rss_gib()
        timings[workers] = form_seconds
        objectives.add(result.objective)

        execution = result.extras.get("execution", "serial")
        print(f"  [{execution} x{workers}] {result.summary()}")
        print(
            f"  [{execution} x{workers}] formation {form_seconds:.1f}s "
            f"(groups={result.n_groups}, intermediate="
            f"{result.extras['n_intermediate_groups']:,}), "
            f"peak RSS so far {rss:.2f} GiB"
        )
        # ru_maxrss is a process-lifetime high-water mark, so in a sweep
        # every point after the first inherits its predecessors' peak; the
        # field name says so to keep the recorded curve honest (the first
        # entry of a run is a true per-point peak).
        entries.append(bench_entry(
            instance, form_seconds, backend="numpy", store="sparse",
            shards=args.shards, workers=workers, execution=execution,
            generate_seconds=gen_seconds,
            peak_rss_gib_process=round(rss, 3),
            objective=result.objective,
        ))

    write_bench_json("sharded_scale", entries)
    rss = peak_rss_gib()

    if len(objectives) > 1:
        print(f"FAIL: objective varies across the worker sweep: {objectives}",
              file=sys.stderr)
        return 1
    if len(timings) > 1:
        # Directional on purpose: fewest workers over most workers, so a
        # parallel *slowdown* reads below 1.0 instead of masquerading as a
        # speedup (a slowest/fastest ratio would pass either way).
        low, high = min(timings), max(timings)
        speedup = timings[low] / timings[high]
        print(f"  sweep speedup ({low} workers / {high} workers): {speedup:.2f}x "
              f"({ {w: round(s, 1) for w, s in timings.items()} })")
        if args.min_speedup > 0 and speedup < args.min_speedup:
            print(f"FAIL: sweep speedup {speedup:.2f}x < {args.min_speedup:.2f}x",
                  file=sys.stderr)
            return 1
    if rss > args.max_rss_gib:
        print(f"FAIL: peak RSS {rss:.2f} GiB > {args.max_rss_gib} GiB", file=sys.stderr)
        return 1
    print(f"OK: peak RSS {rss:.2f} GiB <= {args.max_rss_gib} GiB")
    return 0


if __name__ == "__main__":
    sys.exit(main())
