#!/usr/bin/env python
"""Million-user sharded formation: the sparse data plane's scale proof.

Generates a ``--users x --items`` instance at ``--density`` directly into a
CSR :class:`~repro.recsys.store.SparseStore` (no dense matrix is ever
materialised — the dense equivalent of the default 1M x 10k instance would
need ~80 GB), then forms groups through
:class:`~repro.core.sharded.ShardedFormation` and reports wall time and peak
RSS.  The default configuration is the PR acceptance check::

    PYTHONPATH=src python benchmarks/bench_sharded_scale.py

which must complete with peak RSS < 8 GB.  Results are appended to
``BENCH_sharded_scale.json`` via the shared timing writer.

Not collected by pytest (no ``test_`` functions) — this is an operator
script, sized in minutes, not a CI gate.
"""

from __future__ import annotations

import argparse
import resource
import sys
import time

from _timing import bench_entry, write_bench_json

from repro.core import ShardedFormation
from repro.datasets import synthetic_sparse_store


def peak_rss_gib() -> float:
    """Peak resident set size of this process in GiB (Linux: ru_maxrss is KiB)."""
    rss_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - ru_maxrss is bytes there
        rss_kib /= 1024.0
    return rss_kib / (1024.0 * 1024.0)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--users", type=int, default=1_000_000)
    parser.add_argument("--items", type=int, default=10_000)
    parser.add_argument("--density", type=float, default=0.01)
    parser.add_argument("--groups", type=int, default=64, help="group budget l")
    parser.add_argument("--k", type=int, default=5)
    parser.add_argument("--shards", type=int, default=64)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--semantics", default="lm", choices=["lm", "av"])
    parser.add_argument("--aggregation", default="min")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--max-rss-gib", type=float, default=8.0,
                        help="fail if peak RSS exceeds this (default: 8)")
    args = parser.parse_args(argv)

    instance = (
        f"{args.users}x{args.items} @ {args.density:.0%}, "
        f"l={args.groups}, k={args.k}, shards={args.shards}"
    )
    print(f"generating sparse instance: {instance}")
    t0 = time.perf_counter()
    store = synthetic_sparse_store(
        args.users, args.items, density=args.density, rng=args.seed
    )
    gen_seconds = time.perf_counter() - t0
    print(
        f"  generated in {gen_seconds:.1f}s: nnz={store.csr.nnz:,} "
        f"({store.nbytes / 2**30:.2f} GiB CSR; dense would be "
        f"{args.users * args.items * 8 / 2**30:.1f} GiB)"
    )

    engine = ShardedFormation(shards=args.shards, workers=args.workers)
    t0 = time.perf_counter()
    result = engine.run(
        store, args.groups, args.k, args.semantics, args.aggregation
    )
    form_seconds = time.perf_counter() - t0
    rss = peak_rss_gib()

    print(f"  {result.summary()}")
    print(
        f"  formation {form_seconds:.1f}s "
        f"(groups={result.n_groups}, intermediate="
        f"{result.extras['n_intermediate_groups']:,}), peak RSS {rss:.2f} GiB"
    )
    write_bench_json("sharded_scale", [bench_entry(
        instance, form_seconds, backend="numpy", store="sparse",
        shards=args.shards, workers=args.workers, generate_seconds=gen_seconds,
        peak_rss_gib=round(rss, 3), objective=result.objective,
    )])

    if rss > args.max_rss_gib:
        print(f"FAIL: peak RSS {rss:.2f} GiB > {args.max_rss_gib} GiB", file=sys.stderr)
        return 1
    print(f"OK: peak RSS {rss:.2f} GiB <= {args.max_rss_gib} GiB")
    return 0


if __name__ == "__main__":
    sys.exit(main())
