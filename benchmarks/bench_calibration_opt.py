"""Calibration against the optimum (the role of OPT-* / CPLEX in the paper).

The paper plots OPT-LM-* and OPT-AV-* alongside the greedy algorithms on
small instances to show the greedy objective tracks the optimum.  Our exact
solvers handle up to 16 users, so this bench sweeps small instances and
checks the Theorem 2/3 absolute-error bounds, and times the exact solvers
themselves.
"""

from __future__ import annotations

from conftest import report

from repro.datasets import synthetic_yahoo_music
from repro.exact import optimal_groups_branch_and_bound, optimal_groups_dp, optimal_groups_ilp
from repro.experiments import optimal_calibration


def test_exact_dp_runtime(benchmark):
    """Time the subset-DP optimal solver on a 12-user instance."""
    ratings = synthetic_yahoo_music(12, 20, rng=0)
    result = benchmark(optimal_groups_dp, ratings, 4, 3)
    assert result.extras["optimal"]


def test_exact_ilp_runtime(benchmark):
    """Time the HiGHS set-partitioning ILP on a 12-user instance."""
    ratings = synthetic_yahoo_music(12, 20, rng=0)
    result = benchmark(optimal_groups_ilp, ratings, 4, 3)
    assert result.n_groups <= 4


def test_exact_bnb_runtime(benchmark):
    """Time the branch-and-bound solver on a 12-user instance."""
    ratings = synthetic_yahoo_music(12, 20, rng=0)
    result = benchmark(optimal_groups_branch_and_bound, ratings, 4, 3)
    assert result.extras["optimal"]


def test_calibration_reproduce_series(benchmark):
    """GRD tracks OPT within the published error bounds on small instances."""
    panels = benchmark.pedantic(
        optimal_calibration,
        kwargs=dict(n_users=12, n_items=20, n_groups=4, top_k_values=(1, 2, 3),
                    repeats=2, seed=0),
        rounds=1, iterations=1,
    )
    report("Calibration: GRD vs Baseline vs OPT on exactly solvable instances", panels)
    for panel in panels:
        algorithms = panel.algorithms()
        grd_name = next(a for a in algorithms if a.startswith("GRD"))
        opt_name = next(a for a in algorithms if a.startswith("OPT"))
        grd = panel.series_for(grd_name).y_values
        opt = panel.series_for(opt_name).y_values
        for x_value, grd_value, opt_value in zip(panel.series_for(grd_name).x_values, grd, opt):
            assert grd_value <= opt_value + 1e-9
            if panel.metadata["semantics"] == "lm":
                bound = 5.0 if panel.metadata["aggregation"] in ("min", "max") else 5.0 * x_value
                assert opt_value - grd_value <= bound + 1e-9
