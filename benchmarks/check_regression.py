#!/usr/bin/env python
"""Benchmark smoke / regression gate for the formation engine backends.

Runs the fig4 (GRD-LM-MIN) and fig6 (GRD-AV-MIN) scalability benches at a
small scale through both engine backends and fails when

* the two backends disagree on any result (groups, objective, bookkeeping) —
  they are required to be bit-identical; or
* the ``numpy`` backend is slower than the ``reference`` backend (optionally
  by a stricter ``--min-speedup`` factor).

Intended for CI::

    PYTHONPATH=src python benchmarks/check_regression.py

and for the full-size acceptance check locally::

    PYTHONPATH=src python benchmarks/check_regression.py \
        --users 4000 --items 400 --min-speedup 5.0
"""

from __future__ import annotations

import argparse
import sys

from _timing import best_time, results_identical

from repro.core import FormationEngine
from repro.datasets import synthetic_yahoo_music


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--users", type=int, default=1500,
                        help="instance size in users (default: 1500)")
    parser.add_argument("--items", type=int, default=300,
                        help="instance size in items (default: 300)")
    parser.add_argument("--groups", type=int, default=10, help="group budget l")
    parser.add_argument("--k", type=int, default=5, help="recommended list length")
    parser.add_argument("--rounds", type=int, default=3,
                        help="timing rounds; the best round counts (default: 3)")
    parser.add_argument("--min-speedup", type=float, default=1.0,
                        help="required reference/numpy runtime ratio (default: 1.0)")
    parser.add_argument("--seed", type=int, default=0, help="dataset seed")
    args = parser.parse_args(argv)

    ratings = synthetic_yahoo_music(
        n_users=args.users, n_items=args.items, rng=args.seed
    )
    engines = {name: FormationEngine(name) for name in ("reference", "numpy")}

    failures = []
    for figure, semantics in (("fig4", "lm"), ("fig6", "av")):
        timings = {}
        results = {}
        for name, engine in engines.items():
            timings[name], results[name] = best_time(
                engine, ratings, args.groups, args.k, semantics, rounds=args.rounds
            )
        speedup = timings["reference"] / timings["numpy"]
        status = "ok"
        if not results_identical(results["reference"], results["numpy"]):
            status = "PARITY MISMATCH"
            failures.append(f"{figure}: backends disagree on results")
        elif speedup < args.min_speedup:
            status = "TOO SLOW"
            failures.append(
                f"{figure}: numpy speedup {speedup:.2f}x < required "
                f"{args.min_speedup:.2f}x"
            )
        print(
            f"{figure} GRD-{semantics.upper()}-MIN "
            f"({args.users}x{args.items}, l={args.groups}, k={args.k}): "
            f"reference {timings['reference'] * 1000:7.1f} ms | "
            f"numpy {timings['numpy'] * 1000:7.1f} ms | "
            f"speedup {speedup:5.2f}x | {status}"
        )

    if failures:
        print("\nFAIL:", "; ".join(failures), file=sys.stderr)
        return 1
    print("\nOK: numpy backend is bit-identical and at least "
          f"{args.min_speedup:.2f}x the reference speed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
