#!/usr/bin/env python
"""Benchmark smoke / regression gate for the formation engine backends.

Runs the fig4 (GRD-LM-MIN) and fig6 (GRD-AV-MIN) scalability benches at a
small scale through both engine backends and fails when

* the two backends disagree on any result (groups, objective, bookkeeping) —
  they are required to be bit-identical; or
* the ``numpy`` backend is slower than the ``reference`` backend (optionally
  by a stricter ``--min-speedup`` factor); or
* (``--store sparse`` / ``--store both``) the CSR sparse-store path
  disagrees with the dense baseline, or exceeds ``--max-sparse-slowdown``
  times the dense numpy runtime; or
* (``--shards N``, N > 1) the sharded execution path disagrees with the
  unsharded engine on this integer-rated instance (where the documented
  bound is bit-identity); or
* (``--processes W``, W >= 1) the shared-memory process-executor path
  disagrees with the unsharded engine, or (with ``--min-process-speedup``)
  the W-worker run fails to beat the 1-worker serial run by the required
  factor — the acceptance-scale speedup check (8 workers, the 1M-user
  instance) runs through ``bench_sharded_scale.py --workers 1,8
  --execution processes``, which shares this parity contract; or
* (``--cache-dir DIR``) a warm :class:`repro.execution.cache.ArtifactCache`
  run fails to skip TopKIndex construction (verified by the index build
  counter) or the cached, memory-mapped index changes any result; or
* (``--kernel-gate``) the ``--kernels fast`` or compiled ``parallel``
  generation disagrees with ``classic`` on any formation result (blocking;
  the parallel leg is skipped with a note when no C compiler is
  available), or — only when ``--min-kernel-speedup`` /
  ``--min-parallel-speedup`` are positive — the fast (vs classic) or
  parallel (vs fast) combined index build + bucketing time fails to beat
  its baseline by the required factor (non-blocking by default: the honest
  speedup measurements live in ``bench_kernels.py`` at the fig4 largest
  instance; this CI-scale smoke only reports the trend).

``--service`` additionally runs the online-service bench
(``bench_service_updates.py``) at a small scale as a **non-blocking trend
gate**: its numbers — incremental update throughput, durable typed-event
ingest (events/s under mixed read/write load) and the snapshot+WAL-replay
recovery time — are printed and written to ``BENCH_service.json`` so the
trajectory is tracked across PRs, but they never fail this gate (the
acceptance-scale speedup check lives in the bench's own
``--min-speedup``).  It then runs the replica load harness
(``bench_load.py``) with a 2-replica sweep: the throughput/latency
numbers are a trend report, but **replica-parity is blocking** — a
replica answering anything different from single-process serving fails
this gate (the scaling floor is left to the bench's own
``--min-scaling`` at acceptance scale).

``--obs-overhead`` gates the telemetry plane itself: the per-request
cost of the recommend path's instrumentation sequence (measured
differentially — a tight enabled loop minus the identical disabled
loop), divided by the median end-to-end recommend latency over
cache-busting subset reads, must stay within ``--max-obs-overhead``
(default 2%) — the instrumented hot path is required to stay
effectively free.  The measured ratio is recorded as ``obs_`` entries
in ``BENCH_service.json``.

``--faults-overhead`` gates the failpoint plane the same way: with no
schedule configured every ``fault_fire``/``fault_check`` call must be a
near-free early return.  The per-request cost of the hot path's site
visits (HTTP dispatch check plus the WAL append/fsync and pipeline apply
fires a write performs), measured differentially against an empty loop,
divided by the median recommend latency, must stay within
``--max-faults-overhead`` (default 2%).  Recorded as ``overhead_``
entries in ``BENCH_faults.json``.

Each run also writes ``BENCH_regression.json`` (per-instance wall time,
backend, store, commit) so the perf trajectory is tracked across PRs.

Intended for CI::

    PYTHONPATH=src python benchmarks/check_regression.py --store both --shards 4

and for the full-size acceptance check locally::

    PYTHONPATH=src python benchmarks/check_regression.py \
        --users 4000 --items 400 --min-speedup 5.0
"""

from __future__ import annotations

import argparse
import sys

from _timing import (
    bench_entry,
    best_seconds,
    best_time,
    results_identical,
    write_bench_json,
)

from repro.core import FormationEngine, ShardedFormation
from repro.datasets import synthetic_yahoo_music
from repro.recsys import SparseStore


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--users", type=int, default=1500,
                        help="instance size in users (default: 1500)")
    parser.add_argument("--items", type=int, default=300,
                        help="instance size in items (default: 300)")
    parser.add_argument("--groups", type=int, default=10, help="group budget l")
    parser.add_argument("--k", type=int, default=5, help="recommended list length")
    parser.add_argument("--rounds", type=int, default=3,
                        help="timing rounds; the best round counts (default: 3)")
    parser.add_argument("--min-speedup", type=float, default=1.0,
                        help="required reference/numpy runtime ratio (default: 1.0)")
    parser.add_argument("--store", default="dense",
                        choices=["dense", "sparse", "both"],
                        help="also gate the sparse-store path against the dense "
                             "baseline (default: dense only)")
    parser.add_argument("--max-sparse-slowdown", type=float, default=5.0,
                        help="max allowed sparse/dense numpy runtime ratio "
                             "(default: 5.0; the sparse path pays blockwise "
                             "densification on an instance that fits in RAM)")
    parser.add_argument("--shards", type=int, default=None,
                        help="also gate the sharded path (bit-identical on this "
                             "integer-rated instance) with this many shards")
    parser.add_argument("--processes", type=int, default=None, metavar="W",
                        help="also gate the shared-memory process executor with "
                             "W workers (parity vs the unsharded engine, plus "
                             "the speedup below)")
    parser.add_argument("--min-process-speedup", type=float, default=0.0,
                        help="required (1-worker serial) / (W-worker process) "
                             "runtime ratio for --processes (default: 0 = "
                             "parity-only; needs >= W cores to be meaningful)")
    parser.add_argument("--cache-dir", default=None, dest="cache_dir", metavar="DIR",
                        help="also gate the artifact cache in DIR: a warm run "
                             "must skip TopKIndex construction (build counter) "
                             "and the mmap-loaded index must not change results")
    parser.add_argument("--service", action="store_true",
                        help="also run the online-service bench at small scale "
                             "as a non-blocking trend report")
    parser.add_argument("--kernel-gate", action="store_true", dest="kernel_gate",
                        help="also gate the --kernels fast and parallel "
                             "generations: formation-result parity with classic "
                             "(blocking; the parallel leg is skipped with a "
                             "note when no C compiler is available) plus a "
                             "kernel-stage speedup report")
    parser.add_argument("--min-kernel-speedup", type=float, default=0.0,
                        dest="min_kernel_speedup",
                        help="required classic/fast combined kernel-stage "
                             "runtime ratio for --kernel-gate (default: 0 = "
                             "parity-only; the >= 2x acceptance floor runs "
                             "through bench_kernels.py at full size)")
    parser.add_argument("--min-parallel-speedup", type=float, default=0.0,
                        dest="min_parallel_speedup",
                        help="required fast/parallel combined kernel-stage "
                             "runtime ratio for --kernel-gate (default: 0 = "
                             "parity-only trend report; the >= 3x acceptance "
                             "floor runs through bench_kernels.py at full size)")
    parser.add_argument("--obs-overhead", action="store_true", dest="obs_overhead",
                        help="also gate the telemetry plane's cost on the "
                             "recommend hot path: interleaved metrics-on vs "
                             "metrics-off legs over cache-busting subset "
                             "reads, best-of-N each; blocking when the "
                             "enabled/disabled ratio exceeds "
                             "--max-obs-overhead")
    parser.add_argument("--max-obs-overhead", type=float, default=0.02,
                        dest="max_obs_overhead",
                        help="max allowed fractional slowdown from enabled "
                             "telemetry on the recommend hot path "
                             "(default: 0.02 = 2%%)")
    parser.add_argument("--faults-overhead", action="store_true",
                        dest="faults_overhead",
                        help="also gate the failpoint plane's disabled cost "
                             "on the hot path: per-request site-visit cost "
                             "(measured differentially against an empty "
                             "loop) over the median recommend latency; "
                             "blocking when the ratio exceeds "
                             "--max-faults-overhead")
    parser.add_argument("--max-faults-overhead", type=float, default=0.02,
                        dest="max_faults_overhead",
                        help="max allowed fractional slowdown from the "
                             "disabled failpoint plane on the hot path "
                             "(default: 0.02 = 2%%)")
    parser.add_argument("--seed", type=int, default=0, help="dataset seed")
    args = parser.parse_args(argv)

    ratings = synthetic_yahoo_music(
        n_users=args.users, n_items=args.items, rng=args.seed
    )
    sparse = (
        SparseStore.from_matrix(ratings)
        if args.store in {"sparse", "both"}
        else None
    )
    engines = {name: FormationEngine(name) for name in ("reference", "numpy")}
    instance = f"{args.users}x{args.items}, l={args.groups}, k={args.k}"

    failures = []
    entries = []
    for figure, semantics in (("fig4", "lm"), ("fig6", "av")):
        timings = {}
        results = {}
        for name, engine in engines.items():
            timings[name], results[name] = best_time(
                engine, ratings, args.groups, args.k, semantics, rounds=args.rounds
            )
            entries.append(bench_entry(
                f"{figure} {instance}", timings[name], backend=name, store="dense",
                semantics=semantics,
            ))
        speedup = timings["reference"] / timings["numpy"]
        status = "ok"
        if not results_identical(results["reference"], results["numpy"]):
            status = "PARITY MISMATCH"
            failures.append(f"{figure}: backends disagree on results")
        elif speedup < args.min_speedup:
            status = "TOO SLOW"
            failures.append(
                f"{figure}: numpy speedup {speedup:.2f}x < required "
                f"{args.min_speedup:.2f}x"
            )
        print(
            f"{figure} GRD-{semantics.upper()}-MIN "
            f"({instance}): "
            f"reference {timings['reference'] * 1000:7.1f} ms | "
            f"numpy {timings['numpy'] * 1000:7.1f} ms | "
            f"speedup {speedup:5.2f}x | {status}"
        )

        if sparse is not None:
            sparse_seconds, sparse_result = best_time(
                engines["numpy"], sparse, args.groups, args.k, semantics,
                rounds=args.rounds,
            )
            entries.append(bench_entry(
                f"{figure} {instance}", sparse_seconds, backend="numpy",
                store="sparse", semantics=semantics,
            ))
            slowdown = sparse_seconds / timings["numpy"]
            status = "ok"
            if not results_identical(results["numpy"], sparse_result):
                status = "PARITY MISMATCH"
                failures.append(f"{figure}: sparse store disagrees with dense")
            elif slowdown > args.max_sparse_slowdown:
                status = "TOO SLOW"
                failures.append(
                    f"{figure}: sparse store {slowdown:.2f}x slower than dense "
                    f"(limit {args.max_sparse_slowdown:.2f}x)"
                )
            print(
                f"{figure} GRD-{semantics.upper()}-MIN sparse store: "
                f"{sparse_seconds * 1000:7.1f} ms | {slowdown:5.2f}x dense | {status}"
            )

        if args.shards is not None and args.shards > 1:
            data = sparse if sparse is not None else ratings
            store_name = "sparse" if sparse is not None else "dense"
            sharded = ShardedFormation(shards=args.shards)
            import time as _time
            sharded_best = float("inf")
            sharded_result = None
            for _ in range(args.rounds):
                t0 = _time.perf_counter()
                sharded_result = sharded.run(
                    data, args.groups, args.k, semantics, "min"
                )
                sharded_best = min(sharded_best, _time.perf_counter() - t0)
            entries.append(bench_entry(
                f"{figure} {instance}", sharded_best, backend="numpy",
                store=store_name, semantics=semantics, shards=args.shards,
            ))
            status = "ok"
            if not results_identical(results["numpy"], sharded_result):
                status = "PARITY MISMATCH"
                failures.append(
                    f"{figure}: sharded ({args.shards} shards) disagrees with "
                    f"unsharded on integer ratings"
                )
            print(
                f"{figure} GRD-{semantics.upper()}-MIN sharded x{args.shards}: "
                f"{sharded_best * 1000:7.1f} ms | {status}"
            )

        if args.processes is not None:
            data = sparse if sparse is not None else ratings
            store_name = "sparse" if sparse is not None else "dense"
            n_shards = max(args.shards or 0, args.processes, 2)
            runs = {}
            for label, engine_cfg in (
                ("serial", ShardedFormation(shards=n_shards, execution="serial")),
                ("processes", ShardedFormation(
                    shards=n_shards, workers=args.processes, execution="processes"
                )),
            ):
                # best_time works on anything with the engine's .run
                # signature — keeping the shared best-of-N protocol.
                runs[label] = best_time(
                    engine_cfg, data, args.groups, args.k, semantics,
                    rounds=args.rounds,
                )
                entries.append(bench_entry(
                    f"{figure} {instance}", runs[label][0], backend="numpy",
                    store=store_name, semantics=semantics, shards=n_shards,
                    execution=label,
                    workers=args.processes if label == "processes" else 1,
                ))
            process_speedup = runs["serial"][0] / runs["processes"][0]
            status = "ok"
            if not results_identical(results["numpy"], runs["processes"][1]):
                status = "PARITY MISMATCH"
                failures.append(
                    f"{figure}: process executor ({args.processes} workers) "
                    f"disagrees with the unsharded engine"
                )
            elif process_speedup < args.min_process_speedup:
                status = "TOO SLOW"
                failures.append(
                    f"{figure}: process speedup {process_speedup:.2f}x < required "
                    f"{args.min_process_speedup:.2f}x"
                )
            print(
                f"{figure} GRD-{semantics.upper()}-MIN processes x{args.processes}: "
                f"serial {runs['serial'][0] * 1000:7.1f} ms | "
                f"processes {runs['processes'][0] * 1000:7.1f} ms | "
                f"speedup {process_speedup:5.2f}x | {status}"
            )

    if args.cache_dir is not None:
        from repro.core.engine import coerce_store
        from repro.core.topk_index import TopKIndex
        from repro.execution.cache import ArtifactCache

        cache = ArtifactCache(args.cache_dir)
        store = coerce_store(ratings)
        cold_builds = TopKIndex.builds
        cold_index, cold_hit = cache.get_or_build_index(store, args.k)
        warm_builds = TopKIndex.builds
        warm_index, warm_hit = cache.get_or_build_index(store, args.k)
        after_warm = TopKIndex.builds
        status = "ok"
        if warm_hit is not True or after_warm != warm_builds:
            status = "CACHE MISS"
            failures.append(
                "artifact cache: warm run did not skip TopKIndex construction "
                f"(hit={warm_hit}, builds {warm_builds} -> {after_warm})"
            )
        else:
            cached_result = engines["numpy"].run(
                store, args.groups, args.k, "lm", "min", topk=warm_index
            )
            fresh_result = engines["numpy"].run(store, args.groups, args.k, "lm", "min")
            if not results_identical(cached_result, fresh_result):
                status = "PARITY MISMATCH"
                failures.append(
                    "artifact cache: mmap-loaded index changes formation results"
                )
        print(
            f"artifact cache ({instance}): cold hit={cold_hit} "
            f"(builds +{warm_builds - cold_builds}), warm hit={warm_hit} "
            f"(builds +{after_warm - warm_builds}) | {status}"
        )

    if args.kernel_gate:
        from repro.core import TopKIndex, kernels
        from repro.core.engine import coerce_store

        store = coerce_store(ratings)
        kernel_runs = {}
        stage_seconds = {}

        def kernel_stages():
            index = TopKIndex.build(store, args.k)
            items_table, scores_table = index.top_k(args.k)
            kernels.bucketize(items_table, scores_table, "last")

        gate_modes = ["classic", "fast"]
        if kernels.parallel_available():
            gate_modes.append("parallel")
        else:
            from repro.core import kernels_cc

            reason = kernels_cc.unavailable_reason() or "unknown"
            print(f"kernels: parallel leg skipped ({reason}); "
                  f"fast-vs-classic gate still runs")
        for mode in gate_modes:
            with kernels.use_kernels(mode):
                stage_seconds[mode], _ = best_seconds(
                    kernel_stages, rounds=args.rounds
                )
                kernel_runs[mode] = {
                    semantics: engines["numpy"].run(
                        ratings, args.groups, args.k, semantics, "min"
                    )
                    for semantics in ("lm", "av")
                }
                entries.append(bench_entry(
                    f"kernel stages {instance}", stage_seconds[mode], backend="numpy",
                    store="dense", kernels=mode, stage="index_build+bucketing",
                    threads=(
                        kernels.get_kernel_threads() if mode == "parallel" else None
                    ),
                ))
        kernel_speedup = stage_seconds["classic"] / stage_seconds["fast"]
        status = "ok"
        for mode in gate_modes[1:]:
            for semantics in ("lm", "av"):
                if not results_identical(
                    kernel_runs["classic"][semantics], kernel_runs[mode][semantics]
                ):
                    status = "PARITY MISMATCH"
                    failures.append(
                        f"kernels: {mode} generation disagrees with classic "
                        f"(GRD-{semantics.upper()}-MIN)"
                    )
        if status == "ok" and kernel_speedup < args.min_kernel_speedup:
            status = "TOO SLOW"
            failures.append(
                f"kernels: combined stage speedup {kernel_speedup:.2f}x < "
                f"required {args.min_kernel_speedup:.2f}x"
            )
        if "parallel" in stage_seconds:
            parallel_speedup = stage_seconds["fast"] / stage_seconds["parallel"]
            if status == "ok" and parallel_speedup < args.min_parallel_speedup:
                status = "TOO SLOW"
                failures.append(
                    f"kernels: parallel/fast stage speedup {parallel_speedup:.2f}x "
                    f"< required {args.min_parallel_speedup:.2f}x"
                )
        cells = [
            f"classic {stage_seconds['classic'] * 1000:7.1f} ms",
            f"fast {stage_seconds['fast'] * 1000:7.1f} ms",
        ]
        if "parallel" in stage_seconds:
            cells.append(f"parallel {stage_seconds['parallel'] * 1000:7.1f} ms")
        print(
            f"kernels ({instance}): " + " | ".join(cells)
            + f" | fast speedup {kernel_speedup:5.2f}x | {status}"
        )

    path = write_bench_json("regression", entries)
    print(f"\ntimings written to {path}")

    if args.service:
        # Non-blocking: the service bench reports its own trend numbers and
        # writes BENCH_service.json; a slow run never fails this gate.
        print("\nservice trend (non-blocking):")
        import bench_service_updates

        try:
            bench_service_updates.main([
                "--users", str(max(args.users, 2000)),
                "--items", str(args.items),
                "--batches", "3",
                "--batch-size", "200",
                "--requests", "12",
                "--event-batches", "4",
                "--event-batch-size", "100",
                "--min-speedup", "0",
            ])
        except Exception as exc:  # noqa: BLE001 - trend-only, never gate
            print(f"service trend bench failed (non-blocking): {exc}",
                  file=sys.stderr)

        # Replica load harness: throughput/latency are trend-only, but the
        # replica-parity leg inside the bench is blocking — replicas that
        # compute different answers are a correctness bug.
        print("\nreplica load harness (parity blocking, scaling trend):")
        import bench_load

        try:
            load_rc = bench_load.main([
                "--users", "300",
                "--items", "60",
                "--replicas", "0,2",
                "--clients", "4",
                "--requests", "6",
                "--subsets", "8",
                "--min-scaling", "0",
            ])
        except Exception as exc:  # noqa: BLE001 - harness crash = gate fail
            load_rc = 1
            print(f"load harness crashed: {exc}", file=sys.stderr)
        if load_rc != 0:
            failures.append(
                "replica serving failed the load harness (parity with "
                "single-process serving is blocking)"
            )

    if args.obs_overhead:
        # Telemetry-cost gate: the metrics plumbing on the recommend hot
        # path must cost <= --max-obs-overhead when enabled.  End-to-end
        # A/B wall-clock timing cannot gate this honestly on a shared CI
        # box: A/A runs of an interleaved, order-balanced leg protocol
        # swing by +-2% — the same magnitude as the threshold.  So the
        # gate measures the two factors separately and combines them:
        #
        # * the median end-to-end recommend latency over cache-busting
        #   subset reads (every request names a distinct subset and the
        #   subset count exceeds the result memo, so each one computes);
        # * the per-request cost of the exact instrumentation sequence
        #   the recommend path executes (one counter inc + the two fused
        #   span/histogram blocks — see the mutation audit in
        #   docs/observability.md), timed differentially: a tight loop
        #   with metrics enabled minus the identical loop disabled.
        #
        # overhead = instrumentation_cost / median_latency — the
        # throughput delta attributable to telemetry, with engine noise
        # factored out of the numerator.
        import time as _time

        import numpy as np

        from _timing import merge_bench_json

        from repro.obs.registry import (
            H_KERNEL_BUCKETIZE,
            H_RECOMMEND,
            K_KERNEL_BUCKETIZE_CALLS,
            K_REQUESTS,
            set_enabled,
        )
        from repro.obs.runtime import observed
        from repro.recsys import DenseStore
        from repro.service import FormationService

        print("\ntelemetry overhead gate:")
        service = FormationService(
            DenseStore(ratings.values, scale=ratings.scale),
            k_max=args.k, shards=4,
        )
        obs_registry = service.metrics
        rng = np.random.default_rng(args.seed + 2015)
        subset_size = max(8, min(64, args.users // 4))
        n_subsets = 160  # > the result memo (128): every request computes
        subsets = [
            np.sort(rng.choice(args.users, size=subset_size, replace=False)).tolist()
            for _ in range(n_subsets)
        ]

        def obs_request_times() -> list:
            times = []
            for subset in subsets:
                t0 = _time.perf_counter()
                service.recommend(k=args.k, max_groups=args.groups,
                                  user_ids=subset)
                times.append(_time.perf_counter() - t0)
            return times

        def obs_instrumentation_seconds(reps: int) -> float:
            t0 = _time.perf_counter()
            for _ in range(reps):
                obs_registry.inc(K_REQUESTS)
                with observed("kernel.bucketize", H_KERNEL_BUCKETIZE,
                              counter=K_KERNEL_BUCKETIZE_CALLS,
                              registry=obs_registry):
                    pass
                with observed("service.recommend", H_RECOMMEND,
                              registry=obs_registry):
                    pass
            return _time.perf_counter() - t0

        obs_reps = 20000
        try:
            obs_request_times()  # warm (allocator, numpy, code paths)
            latencies = sorted(obs_request_times())
            median_latency = latencies[len(latencies) // 2]
            obs_cost = {True: float("inf"), False: float("inf")}
            for _ in range(max(args.rounds, 3)):
                for obs_on in (True, False):
                    set_enabled(obs_on)
                    obs_cost[obs_on] = min(
                        obs_cost[obs_on], obs_instrumentation_seconds(obs_reps)
                    )
        finally:
            set_enabled(True)
            service.close()
        per_request = max(0.0, (obs_cost[True] - obs_cost[False]) / obs_reps)
        obs_overhead = per_request / median_latency
        status = "ok"
        if obs_overhead > args.max_obs_overhead:
            status = "TOO SLOW"
            failures.append(
                f"telemetry: enabled-metrics overhead "
                f"{obs_overhead * 100:.2f}% > allowed "
                f"{args.max_obs_overhead * 100:.2f}% on the recommend hot path"
            )
        print(
            f"recommend hot path ({n_subsets} subset reads of "
            f"{subset_size} users): "
            f"median request {median_latency * 1000:7.3f} ms | "
            f"instrumentation {per_request * 1e6:5.2f} us/request | "
            f"overhead {obs_overhead * 100:+.2f}% | {status}"
        )
        obs_path = merge_bench_json("service", [
            bench_entry(
                f"obs overhead {instance}", median_latency, backend="numpy",
                store="dense", metric="obs_recommend_median",
                requests=n_subsets, obs_overhead=obs_overhead,
            ),
            bench_entry(
                f"obs overhead {instance}", per_request, backend="numpy",
                store="dense", metric="obs_instrumentation_per_request",
            ),
        ], "obs_")
        print(f"telemetry overhead written to {obs_path}")

    if args.faults_overhead:
        # Failpoint-cost gate: with no schedule configured, every
        # fault_fire/fault_check must be a near-free early return — the
        # plane ships in production builds and sits on the WAL, pipeline
        # and dispatch hot paths.  Same two-factor methodology as the
        # telemetry gate: the median end-to-end recommend latency over
        # cache-busting subset reads, and the per-request cost of the
        # site-visit sequence a durable write performs (the densest
        # failpoint traffic any request generates), timed differentially
        # against an empty loop of the same shape.
        import time as _time

        import numpy as np

        from _timing import merge_bench_json

        from repro import faults as _faults
        from repro.recsys import DenseStore
        from repro.service import FormationService

        print("\nfailpoint overhead gate (plane disabled):")
        _faults.reset()
        service = FormationService(
            DenseStore(ratings.values, scale=ratings.scale),
            k_max=args.k, shards=4,
        )
        rng = np.random.default_rng(args.seed + 2015)
        subset_size = max(8, min(64, args.users // 4))
        n_subsets = 160  # > the result memo (128): every request computes
        subsets = [
            np.sort(rng.choice(args.users, size=subset_size, replace=False)).tolist()
            for _ in range(n_subsets)
        ]

        def fault_request_times() -> list:
            times = []
            for subset in subsets:
                t0 = _time.perf_counter()
                service.recommend(k=args.k, max_groups=args.groups,
                                  user_ids=subset)
                times.append(_time.perf_counter() - t0)
            return times

        fire, chk = _faults.fire, _faults.check

        def fault_site_visit_seconds(reps: int) -> float:
            t0 = _time.perf_counter()
            for _ in range(reps):
                chk("http.dispatch")
                fire("wal.append")
                fire("wal.fsync")
                fire("pipeline.apply")
            return _time.perf_counter() - t0

        def empty_loop_seconds(reps: int) -> float:
            t0 = _time.perf_counter()
            for _ in range(reps):
                pass
            return _time.perf_counter() - t0

        fault_reps = 20000
        try:
            fault_request_times()  # warm (allocator, numpy, code paths)
            latencies = sorted(fault_request_times())
            median_latency = latencies[len(latencies) // 2]
            visit_cost = {True: float("inf"), False: float("inf")}
            for _ in range(max(args.rounds, 3)):
                visit_cost[True] = min(
                    visit_cost[True], fault_site_visit_seconds(fault_reps)
                )
                visit_cost[False] = min(
                    visit_cost[False], empty_loop_seconds(fault_reps)
                )
        finally:
            service.close()
        per_request = max(
            0.0, (visit_cost[True] - visit_cost[False]) / fault_reps
        )
        faults_ratio = per_request / median_latency
        status = "ok"
        if faults_ratio > args.max_faults_overhead:
            status = "TOO SLOW"
            failures.append(
                f"failpoints: disabled-plane overhead "
                f"{faults_ratio * 100:.2f}% > allowed "
                f"{args.max_faults_overhead * 100:.2f}% on the hot path"
            )
        print(
            f"recommend hot path ({n_subsets} subset reads of "
            f"{subset_size} users): "
            f"median request {median_latency * 1000:7.3f} ms | "
            f"disabled site visits {per_request * 1e6:5.2f} us/request | "
            f"overhead {faults_ratio * 100:+.2f}% | {status}"
        )
        faults_path = merge_bench_json("faults", [
            bench_entry(
                f"faults overhead {instance}", median_latency,
                backend="numpy", store="dense",
                metric="overhead_recommend_median",
                requests=n_subsets, faults_overhead=faults_ratio,
            ),
            bench_entry(
                f"faults overhead {instance}", per_request, backend="numpy",
                store="dense", metric="overhead_site_visits_per_request",
            ),
        ], "overhead_")
        print(f"failpoint overhead written to {faults_path}")

    if failures:
        print("\nFAIL:", "; ".join(failures), file=sys.stderr)
        return 1
    print("OK: all gated paths are bit-identical and within their time budgets "
          f"(numpy >= {args.min_speedup:.2f}x reference)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
